#include "core/diagnostics.h"

#include <utility>

#include "core/implication.h"

namespace olapdc {

namespace {

/// Schema with the constraint subset selected by `keep`.
DimensionSchema Restrict(const DimensionSchema& ds,
                         const std::vector<bool>& keep) {
  std::vector<DimensionConstraint> subset;
  for (size_t i = 0; i < ds.constraints().size(); ++i) {
    if (keep[i]) subset.push_back(ds.constraints()[i]);
  }
  return DimensionSchema(ds.hierarchy_ptr(), std::move(subset));
}

}  // namespace

Result<std::vector<size_t>> FindRedundantConstraints(
    const DimensionSchema& ds, const DimsatOptions& options) {
  std::vector<size_t> redundant;
  const size_t n = ds.constraints().size();
  for (size_t i = 0; i < n; ++i) {
    std::vector<bool> keep(n, true);
    keep[i] = false;
    DimensionSchema rest = Restrict(ds, keep);
    OLAPDC_ASSIGN_OR_RETURN(
        ImplicationResult r,
        Implies(rest, ds.constraints()[i], options));
    OLAPDC_RETURN_NOT_OK(r.status);
    if (r.implied) redundant.push_back(i);
  }
  return redundant;
}

Result<DimensionSchema> MinimizeConstraintSet(const DimensionSchema& ds,
                                              const DimsatOptions& options) {
  const size_t n = ds.constraints().size();
  std::vector<bool> keep(n, true);
  // Greedy deletion, later constraints first so that earlier (usually
  // more fundamental) constraints survive equivalences.
  for (size_t i = n; i-- > 0;) {
    keep[i] = false;
    DimensionSchema rest = Restrict(ds, keep);
    OLAPDC_ASSIGN_OR_RETURN(
        ImplicationResult r,
        Implies(rest, ds.constraints()[i], options));
    OLAPDC_RETURN_NOT_OK(r.status);
    if (!r.implied) keep[i] = true;  // load-bearing; restore
  }
  return Restrict(ds, keep);
}

Result<std::vector<size_t>> UnsatisfiableCore(const DimensionSchema& ds,
                                              CategoryId category,
                                              const DimsatOptions& options) {
  {
    DimsatResult full = Dimsat(ds, category, options);
    OLAPDC_RETURN_NOT_OK(full.status);
    if (full.satisfiable) {
      return Status::InvalidArgument(
          "category is satisfiable; no unsatisfiable core exists");
    }
  }
  const size_t n = ds.constraints().size();
  std::vector<bool> keep(n, true);
  for (size_t i = 0; i < n; ++i) {
    keep[i] = false;
    DimensionSchema rest = Restrict(ds, keep);
    DimsatResult r = Dimsat(rest, category, options);
    OLAPDC_RETURN_NOT_OK(r.status);
    if (r.satisfiable) keep[i] = true;  // needed for unsatisfiability
  }
  std::vector<size_t> core;
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) core.push_back(i);
  }
  return core;
}

}  // namespace olapdc
