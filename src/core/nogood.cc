#include "core/nogood.h"

#include <vector>

namespace olapdc {

Fingerprint128 NoGoodStore::Signature(const Subhierarchy& g,
                                      uint32_t option_bits,
                                      uint64_t theory_salt) {
  // The signature covers exactly what determines the subtree: the
  // universe size, the root, the category set, the edge set, the
  // semantic option bits, and the theory salt. top() and Below() are
  // derived from the edges, so mixing them would add cost without
  // discrimination.
  Fingerprinter fp;
  fp.Mix(static_cast<uint64_t>(g.num_categories()));
  fp.Mix(static_cast<uint64_t>(g.root()));
  fp.Mix(static_cast<uint64_t>(option_bits));
  fp.Mix(theory_salt);
  g.categories().ForEach([&](int c) {
    fp.Mix(0x8000000000000000ull | static_cast<uint64_t>(c));
    g.Out(c).ForEach([&](int d) {
      fp.Mix((static_cast<uint64_t>(c) << 32) | static_cast<uint64_t>(d));
    });
  });
  return fp.Final();
}

std::string NoGoodStore::Serialize() const {
  std::vector<Fingerprint128> entries;
  cache_.ForEach([&](const Fingerprint128& sig, const bool&) {
    entries.push_back(sig);
  });
  std::string out = "dimsat-nogoods v1\n";
  out += "entries " + std::to_string(entries.size()) + "\n";
  out.reserve(out.size() + entries.size() * 33);
  for (const Fingerprint128& sig : entries) {
    out += sig.ToHex();
    out += '\n';
  }
  return out;
}

namespace {

bool ParseHex128(std::string_view hex, Fingerprint128* out) {
  if (hex.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int i = 0; i < 32; ++i) {
    const char c = hex[static_cast<size_t>(i)];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    words[i / 16] = (words[i / 16] << 4) | nibble;
  }
  out->hi = words[0];
  out->lo = words[1];
  return true;
}

/// Consumes the next line (without the newline) from `rest`.
std::string_view NextLine(std::string_view* rest) {
  const size_t eol = rest->find('\n');
  std::string_view line;
  if (eol == std::string_view::npos) {
    line = *rest;
    *rest = std::string_view();
  } else {
    line = rest->substr(0, eol);
    *rest = rest->substr(eol + 1);
  }
  return line;
}

}  // namespace

Status NoGoodStore::Load(std::string_view text, size_t* consumed) {
  std::string_view rest = text;
  if (consumed != nullptr) *consumed = 0;
  if (NextLine(&rest) != "dimsat-nogoods v1") {
    return Status::ParseError(
        "no-good store must start with \"dimsat-nogoods v1\"");
  }
  std::string_view count_line = NextLine(&rest);
  constexpr std::string_view kEntries = "entries ";
  if (count_line.substr(0, kEntries.size()) != kEntries) {
    return Status::ParseError("no-good store missing \"entries N\" line");
  }
  const std::string_view digits = count_line.substr(kEntries.size());
  if (digits.empty()) {
    return Status::ParseError("malformed entry count in no-good store");
  }
  uint64_t expected = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return Status::ParseError("malformed entry count in no-good store");
    }
    expected = expected * 10 + static_cast<uint64_t>(c - '0');
    // Each entry is a 33-byte line; a count past this cap cannot be a
    // store we wrote (and would only make a corrupt file loop longer).
    if (expected > (1u << 27)) {
      return Status::ParseError("implausible entry count in no-good store");
    }
  }
  uint64_t loaded = 0;
  while (loaded < expected) {
    std::string_view line = NextLine(&rest);
    Fingerprint128 sig;
    if (!ParseHex128(line, &sig)) {
      return Status::ParseError("malformed signature at no-good entry " +
                                std::to_string(loaded));
    }
    Record(sig);
    ++loaded;
  }
  if (consumed != nullptr) *consumed = text.size() - rest.size();
  return Status::OK();
}

}  // namespace olapdc
