#include "core/mining.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "constraint/evaluator.h"

namespace olapdc {

namespace {

/// The set of categories in which member m has direct parents.
std::vector<CategoryId> ParentCategories(const DimensionInstance& d,
                                         MemberId m) {
  std::set<CategoryId> categories;
  for (MemberId p : d.Parents(m)) {
    categories.insert(d.member(p).category);
  }
  return std::vector<CategoryId>(categories.begin(), categories.end());
}

/// Conjunction pinning the direct-parent-category set of `root` to
/// exactly `alternative`: positive path atoms for its members, negated
/// ones for every other schema successor.
ExprPtr AlternativeFormula(const HierarchySchema& schema, CategoryId root,
                           const std::vector<CategoryId>& alternative) {
  std::vector<ExprPtr> literals;
  for (CategoryId p : schema.graph().OutNeighbors(root)) {
    const bool positive =
        std::find(alternative.begin(), alternative.end(), p) !=
        alternative.end();
    ExprPtr atom = MakePathAtom({root, p});
    literals.push_back(positive ? atom : MakeNot(std::move(atom)));
  }
  OLAPDC_CHECK(!literals.empty());
  return literals.size() == 1 ? literals[0] : MakeAnd(std::move(literals));
}

}  // namespace

Result<std::vector<DimensionConstraint>> MineConstraints(
    const DimensionInstance& d, const MiningOptions& options) {
  const HierarchySchema& schema = d.hierarchy();
  std::vector<DimensionConstraint> mined;
  BudgetChecker budget_checker(options.budget, options.budget_check_stride,
                               "mining.scan");

  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    if (c == schema.all() || d.MembersOf(c).empty()) continue;

    // Observed direct-parent-category alternatives.
    std::map<std::vector<CategoryId>, std::vector<MemberId>> by_alternative;
    for (MemberId m : d.MembersOf(c)) {
      OLAPDC_RETURN_NOT_OK(budget_checker.Check());
      by_alternative[ParentCategories(d, m)].push_back(m);
    }

    std::vector<ExprPtr> alternatives;
    for (const auto& [alternative, members] : by_alternative) {
      alternatives.push_back(AlternativeFormula(schema, c, alternative));
    }
    ExprPtr split = alternatives.size() == 1
                        ? alternatives[0]
                        : MakeOr(std::move(alternatives));
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint split_constraint,
        MakeConstraint(schema, std::move(split), "split"));
    mined.push_back(std::move(split_constraint));

    if (!options.mine_equality_conditions || by_alternative.size() < 2) {
      continue;
    }

    // Equality-conditioned refinements: does some ancestor category's
    // name determine the alternative? (The lambda can't early-return a
    // Status, so budget trips latch into `budget_status` and short out
    // the remaining conditioning categories.)
    Status budget_status;
    schema.UpSet(c).ForEach([&](int t) {
      if (!budget_status.ok()) return;
      budget_status = budget_checker.Check();
      if (!budget_status.ok()) return;
      if (t == c || t == schema.all()) return;
      // Name of the t-ancestor per member (skip members without one).
      std::map<std::string, std::set<const std::vector<CategoryId>*>>
          by_name;
      for (const auto& [alternative, members] : by_alternative) {
        for (MemberId m : members) {
          MemberId ancestor = d.RollUpMember(m, t);
          if (ancestor == kNoMember) continue;
          by_name[d.member(ancestor).name].insert(&alternative);
        }
      }
      if (by_name.empty() || by_name.size() > options.max_condition_names) {
        return;
      }
      for (const auto& [name, alternative_set] : by_name) {
        if (alternative_set.size() != 1) continue;  // not determining
        ExprPtr condition = MakeEqualityAtom(c, t, name);
        ExprPtr consequence =
            AlternativeFormula(schema, c, **alternative_set.begin());
        Result<DimensionConstraint> refined = MakeConstraint(
            schema, MakeImplies(std::move(condition), std::move(consequence)),
            "cond");
        OLAPDC_CHECK(refined.ok()) << refined.status().ToString();
        mined.push_back(std::move(refined).ValueOrDie());
      }
    });
    if (!budget_status.ok()) return budget_status;
  }

#ifndef NDEBUG
  // Mined constraints must hold on the instance they came from.
  for (const DimensionConstraint& c : mined) {
    OLAPDC_DCHECK(Satisfies(d, c));
  }
#endif
  return mined;
}

Result<DimensionSchema> MineSchema(const DimensionInstance& d,
                                   const MiningOptions& options) {
  OLAPDC_ASSIGN_OR_RETURN(std::vector<DimensionConstraint> mined,
                          MineConstraints(d, options));
  return DimensionSchema(d.schema(), std::move(mined));
}

}  // namespace olapdc
