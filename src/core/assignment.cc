#include "core/assignment.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

namespace olapdc {

namespace {

enum class TV { kFalse, kTrue, kUnknown };

TV Not(TV v) {
  if (v == TV::kUnknown) return TV::kUnknown;
  return v == TV::kTrue ? TV::kFalse : TV::kTrue;
}

/// Search state: per category, kUnassigned, kNk, or an index into that
/// category's candidate list.
constexpr int kUnassigned = -2;
constexpr int kNk = -1;

struct Searcher {
  // Candidates per category (sorted unique constants mentioned by the
  // circled atoms targeting it, plus numeric region representatives for
  // order atoms).
  std::vector<std::vector<std::string>> candidates;
  // Numeric value of each candidate, when it parses as a number
  // (mirrors `candidates`; used by order atoms).
  std::vector<std::vector<std::optional<double>>> numeric;
  std::vector<int> state;
  std::vector<CategoryId> order;  // categories to branch on
  const std::vector<ExprPtr>* exprs = nullptr;
  AssignmentOptions options;
  AssignmentSearchResult result;
  std::vector<std::string> used;  // injectivity tracking

  TV EvalAtom(const Expr& e) const {
    const int s = state[e.target];
    if (s == kUnassigned) return TV::kUnknown;
    // nk stands for a fresh non-numeric constant mentioned nowhere in
    // Sigma: it satisfies neither equality nor order atoms.
    if (s == kNk) return TV::kFalse;
    if (e.kind == ExprKind::kOrderAtom) {
      const std::optional<double>& value = numeric[e.target][s];
      if (!value.has_value()) return TV::kFalse;
      return EvalCmp(e.cmp_op, *value, e.threshold) ? TV::kTrue : TV::kFalse;
    }
    return candidates[e.target][s] == e.constant ? TV::kTrue : TV::kFalse;
  }

  TV Eval(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kTrue:
        return TV::kTrue;
      case ExprKind::kFalse:
        return TV::kFalse;
      case ExprKind::kEqualityAtom:
      case ExprKind::kOrderAtom:
        return EvalAtom(e);
      case ExprKind::kNot:
        return Not(Eval(*e.children[0]));
      case ExprKind::kAnd: {
        TV acc = TV::kTrue;
        for (const auto& c : e.children) {
          TV v = Eval(*c);
          if (v == TV::kFalse) return TV::kFalse;
          if (v == TV::kUnknown) acc = TV::kUnknown;
        }
        return acc;
      }
      case ExprKind::kOr: {
        TV acc = TV::kFalse;
        for (const auto& c : e.children) {
          TV v = Eval(*c);
          if (v == TV::kTrue) return TV::kTrue;
          if (v == TV::kUnknown) acc = TV::kUnknown;
        }
        return acc;
      }
      case ExprKind::kImplies: {
        TV a = Eval(*e.children[0]);
        TV b = Eval(*e.children[1]);
        if (a == TV::kFalse || b == TV::kTrue) return TV::kTrue;
        if (a == TV::kTrue && b == TV::kFalse) return TV::kFalse;
        return TV::kUnknown;
      }
      case ExprKind::kEquiv: {
        TV a = Eval(*e.children[0]);
        TV b = Eval(*e.children[1]);
        if (a == TV::kUnknown || b == TV::kUnknown) return TV::kUnknown;
        return a == b ? TV::kTrue : TV::kFalse;
      }
      case ExprKind::kXor: {
        TV a = Eval(*e.children[0]);
        TV b = Eval(*e.children[1]);
        if (a == TV::kUnknown || b == TV::kUnknown) return TV::kUnknown;
        return a != b ? TV::kTrue : TV::kFalse;
      }
      case ExprKind::kExactlyOne: {
        int known_true = 0;
        int unknown = 0;
        for (const auto& c : e.children) {
          TV v = Eval(*c);
          if (v == TV::kTrue) ++known_true;
          if (v == TV::kUnknown) ++unknown;
        }
        if (known_true > 1) return TV::kFalse;
        if (unknown > 0) return TV::kUnknown;
        return known_true == 1 ? TV::kTrue : TV::kFalse;
      }
      default:
        // Path/composed/through atoms cannot appear after circling.
        OLAPDC_CHECK(false) << "structural atom in circled expression";
        return TV::kFalse;
    }
  }

  /// kFalse if any expression is violated, kTrue if all are certainly
  /// satisfied, kUnknown otherwise.
  TV EvalAll() const {
    TV acc = TV::kTrue;
    for (const auto& e : *exprs) {
      TV v = Eval(*e);
      if (v == TV::kFalse) return TV::kFalse;
      if (v == TV::kUnknown) acc = TV::kUnknown;
    }
    return acc;
  }

  CAssignment Snapshot() const {
    CAssignment out(state.size());
    for (size_t c = 0; c < state.size(); ++c) {
      if (state[c] >= 0) out[c] = candidates[c][state[c]];
    }
    return out;
  }

  /// Returns false to abort the search (budget / first hit found).
  bool Recurse(size_t depth) {
    TV overall = EvalAll();
    if (overall == TV::kFalse) return true;  // prune, keep searching
    if (depth == order.size()) {
      if (overall == TV::kTrue) {
        result.assignments.push_back(Snapshot());
        if (!options.enumerate_all) return false;
        if (result.assignments.size() >= options.max_results) return false;
      }
      return true;
    }
    const CategoryId c = order[depth];
    // nk first (the common case: most categories carry no constant).
    state[c] = kNk;
    ++result.tried;
    if (!Recurse(depth + 1)) return false;
    for (int i = 0; i < static_cast<int>(candidates[c].size()); ++i) {
      const std::string& value = candidates[c][i];
      if (options.require_injective &&
          std::find(used.begin(), used.end(), value) != used.end()) {
        continue;
      }
      state[c] = i;
      used.push_back(value);
      ++result.tried;
      bool keep_going = Recurse(depth + 1);
      used.pop_back();
      if (!keep_going) return false;
    }
    state[c] = kUnassigned;
    return true;
  }
};

}  // namespace

AssignmentSearchResult FindAssignments(const Subhierarchy& g,
                                       const std::vector<ExprPtr>& circled,
                                       const AssignmentOptions& options) {
  const int n = g.num_categories();
  Searcher searcher;
  searcher.options = options;
  searcher.exprs = &circled;
  searcher.candidates.assign(n, {});
  searcher.state.assign(n, kNk);

  // Collect mentioned constants and order thresholds per category.
  std::vector<const Expr*> atoms;
  for (const ExprPtr& e : circled) CollectAtoms(e, &atoms);
  std::vector<std::vector<double>> thresholds(n);
  for (const Expr* atom : atoms) {
    OLAPDC_CHECK(atom->kind == ExprKind::kEqualityAtom ||
                 atom->kind == ExprKind::kOrderAtom)
        << "circled expressions may only contain equality/order atoms";
    if (atom->kind == ExprKind::kEqualityAtom) {
      searcher.candidates[atom->target].push_back(atom->constant);
    } else {
      thresholds[atom->target].push_back(atom->threshold);
    }
  }
  for (int c = 0; c < n; ++c) {
    auto& list = searcher.candidates[c];
    // Region abstraction for order atoms: any real value is equivalent,
    // with respect to the atoms targeting c, to one of — an equality
    // constant; a threshold point; a representative of an open region
    // between/around thresholds; or nk. Representatives are nudged
    // until their rendering differs from every equality constant so the
    // abstract domains stay disjoint.
    if (!thresholds[c].empty()) {
      std::sort(thresholds[c].begin(), thresholds[c].end());
      thresholds[c].erase(
          std::unique(thresholds[c].begin(), thresholds[c].end()),
          thresholds[c].end());
      std::set<std::string> avoid(list.begin(), list.end());
      auto render = [](double v) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.12g", v);
        return std::string(buffer);
      };
      auto add_representative = [&](double lo, double hi) {
        // Pick a point strictly inside (lo, hi) whose rendering is not
        // an equality constant.
        double a = lo, b = hi;
        for (int tries = 0; tries < 64; ++tries) {
          double mid = a + (b - a) / 2;
          std::string text = render(mid);
          if (avoid.find(text) == avoid.end()) {
            list.push_back(std::move(text));
            return;
          }
          b = mid;  // shrink towards lo; renderings must change
        }
        OLAPDC_CHECK(false) << "could not pick a region representative";
      };
      const auto& ts = thresholds[c];
      add_representative(ts.front() - 2.0, ts.front());
      for (size_t i = 0; i + 1 < ts.size(); ++i) {
        add_representative(ts[i], ts[i + 1]);
      }
      add_representative(ts.back(), ts.back() + 2.0);
      for (double t : ts) {
        std::string text = render(t);
        if (avoid.find(text) == avoid.end()) list.push_back(std::move(text));
      }
    }
    if (list.empty()) continue;
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    if (g.Contains(c)) {
      searcher.order.push_back(c);
      searcher.state[c] = kUnassigned;
    } else {
      // Atom targets outside g were already circled to False; a
      // category outside g holds no member, nk by convention.
      list.clear();
      searcher.state[c] = kNk;
    }
  }
  searcher.numeric.assign(n, {});
  for (int c = 0; c < n; ++c) {
    for (const std::string& value : searcher.candidates[c]) {
      searcher.numeric[c].push_back(ParseNumericName(value));
    }
  }

  searcher.Recurse(0);
  return std::move(searcher.result);
}

}  // namespace olapdc
