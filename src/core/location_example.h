// The paper's running example: the `location` dimension (Figure 1) and
// the schema `locationSch` (Figure 3), reconstructed from Examples
// 1-13 and the textual Figure 5. Used by tests, the figure harnesses
// (E1-E6), and the example programs.
//
// Hierarchy (Figure 1(A)):
//   Store -> City, Store -> SaleRegion,
//   City -> Province, City -> State, City -> Country (shortcut),
//   Province -> SaleRegion,
//   State -> SaleRegion, State -> Country,
//   SaleRegion -> Country, Country -> All.
//
// Constraints (Figure 5, left column):
//   (a) Store_City
//   (b) Store.SaleRegion
//   (c) City~Washington == City_Country
//   (d) City~Washington  ⊃ City.Country~USA
//   (e) State.Country~Mexico ∨ State.Country~USA
//   (f) State.Country~Mexico == State_SaleRegion
//   (g) Province.Country~Canada

#ifndef OLAPDC_CORE_LOCATION_EXAMPLE_H_
#define OLAPDC_CORE_LOCATION_EXAMPLE_H_

#include "common/result.h"
#include "core/schema.h"
#include "dim/dimension_instance.h"

namespace olapdc {

/// The Figure 1(A) hierarchy schema.
Result<HierarchySchemaPtr> LocationHierarchy();

/// The Figure 3 schema locationSch = (G, {(a)..(g)}).
Result<DimensionSchema> LocationSchema();

/// The Figure 1(B) dimension instance (7 stores across Canada, Mexico
/// and the USA, including the Washington shortcut), valid under C1-C7
/// and satisfying every locationSch constraint.
Result<DimensionInstance> LocationInstance();

}  // namespace olapdc

#endif  // OLAPDC_CORE_LOCATION_EXAMPLE_H_
