#include "core/checkpoint.h"

#include <sstream>
#include <utility>

#include "core/schema.h"

namespace olapdc {

namespace {

/// %-escapes whitespace, '%', and the empty string so an assignment
/// name survives the whitespace-separated checkpoint format.
std::string EscapeName(const std::string& name) {
  if (name.empty()) return "%e";
  std::string out;
  for (char c : name) {
    switch (c) {
      case '%': out += "%%"; break;
      case ' ': out += "%s"; break;
      case '\t': out += "%t"; break;
      case '\n': out += "%n"; break;
      case '\r': out += "%r"; break;
      default: out += c;
    }
  }
  return out;
}

bool UnescapeName(const std::string& escaped, std::string* out) {
  out->clear();
  if (escaped == "%e") return true;
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '%') {
      out->push_back(escaped[i]);
      continue;
    }
    if (++i >= escaped.size()) return false;
    switch (escaped[i]) {
      case '%': out->push_back('%'); break;
      case 's': out->push_back(' '); break;
      case 't': out->push_back('\t'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      default: return false;
    }
  }
  return true;
}

void WriteEdges(std::ostringstream& out,
                const std::vector<std::pair<CategoryId, CategoryId>>& edges) {
  out << edges.size();
  for (const auto& [u, v] : edges) out << " " << u << " " << v;
}

bool ReadEdges(std::istringstream& in,
               std::vector<std::pair<CategoryId, CategoryId>>* edges) {
  size_t num_edges = 0;
  if (!(in >> num_edges) || num_edges > (size_t{1} << 24)) return false;
  edges->clear();
  edges->reserve(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    CategoryId u, v;
    if (!(in >> u >> v)) return false;
    edges->emplace_back(u, v);
  }
  return true;
}

}  // namespace

std::string DimsatCheckpoint::Serialize() const {
  std::ostringstream out;
  if (num_components == 0) {
    // Monolithic checkpoints keep the v1 format byte-for-byte so every
    // pre-decomposition consumer (and any stored checkpoint text)
    // keeps round-tripping unchanged.
    out << "dimsat-checkpoint v1\n";
    out << "root " << root << " categories " << num_categories << " frames "
        << frames.size() << "\n";
    for (const DimsatCheckpointFrame& frame : frames) {
      out << "frame " << frame.next_mask << " " << frame.depth << " ";
      WriteEdges(out, frame.g.Edges());
      out << "\n";
    }
    return out.str();
  }
  out << "dimsat-checkpoint v2\n";
  out << "root " << root << " categories " << num_categories << " frames "
      << frames.size() << " components " << num_components << " solved "
      << solved.size() << "\n";
  for (const DimsatCheckpointFrame& frame : frames) {
    out << "frame " << frame.component << " " << frame.next_mask << " "
        << frame.depth << " ";
    WriteEdges(out, frame.g.Edges());
    out << "\n";
  }
  for (const DimsatSolvedComponent& comp : solved) {
    out << "solved " << comp.component << " " << comp.models.size() << "\n";
    for (const FrozenDimension& model : comp.models) {
      out << "model ";
      WriteEdges(out, model.g.Edges());
      size_t assigned = 0;
      for (const auto& name : model.names) {
        if (name.has_value()) ++assigned;
      }
      out << " " << assigned;
      for (size_t c = 0; c < model.names.size(); ++c) {
        if (model.names[c].has_value()) {
          out << " " << c << " " << EscapeName(*model.names[c]);
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

Result<DimsatCheckpoint> DimsatCheckpoint::Deserialize(
    std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "dimsat-checkpoint" ||
      (version != "v1" && version != "v2")) {
    return Status::ParseError("not a dimsat-checkpoint v1/v2 header");
  }
  const bool v2 = version == "v2";
  DimsatCheckpoint cp;
  std::string kw_root, kw_categories, kw_frames;
  size_t num_frames = 0;
  if (!(in >> kw_root >> cp.root >> kw_categories >> cp.num_categories >>
        kw_frames >> num_frames) ||
      kw_root != "root" || kw_categories != "categories" ||
      kw_frames != "frames") {
    return Status::ParseError("malformed checkpoint summary line");
  }
  size_t num_solved = 0;
  if (v2) {
    std::string kw_components, kw_solved;
    if (!(in >> kw_components >> cp.num_components >> kw_solved >>
          num_solved) ||
        kw_components != "components" || kw_solved != "solved" ||
        cp.num_components < 2) {
      return Status::ParseError("malformed v2 checkpoint summary line");
    }
  }
  if (cp.num_categories <= 0 || cp.root < 0 ||
      cp.root >= cp.num_categories) {
    return Status::InvalidArgument("checkpoint root out of range");
  }
  if (num_frames > (size_t{1} << 24) || num_solved > (size_t{1} << 24)) {
    return Status::ParseError("implausible checkpoint frame count");
  }
  cp.frames.reserve(num_frames);
  std::vector<std::pair<CategoryId, CategoryId>> edges;
  for (size_t i = 0; i < num_frames; ++i) {
    std::string kw_frame;
    int component = -1;
    uint32_t next_mask = 0;
    int depth = 0;
    if (!(in >> kw_frame) || kw_frame != "frame" ||
        (v2 && !(in >> component)) || !(in >> next_mask >> depth) ||
        depth < 0 ||
        (v2 && (component < 0 || component >= cp.num_components))) {
      return Status::ParseError("malformed checkpoint frame " +
                                std::to_string(i));
    }
    if (!ReadEdges(in, &edges)) {
      return Status::ParseError("truncated edge list in frame " +
                                std::to_string(i));
    }
    std::optional<Subhierarchy> g =
        Subhierarchy::FromPartialEdges(cp.num_categories, cp.root, edges);
    if (!g.has_value()) {
      return Status::InvalidArgument(
          "checkpoint frame " + std::to_string(i) +
          " is not a root-reachable partial subhierarchy");
    }
    cp.frames.push_back(
        DimsatCheckpointFrame{std::move(*g), next_mask, depth, component});
  }
  cp.solved.reserve(num_solved);
  for (size_t s = 0; s < num_solved; ++s) {
    std::string kw_solved;
    DimsatSolvedComponent comp;
    size_t num_models = 0;
    if (!(in >> kw_solved >> comp.component >> num_models) ||
        kw_solved != "solved" || comp.component < 0 ||
        comp.component >= cp.num_components ||
        num_models > (size_t{1} << 24)) {
      return Status::ParseError("malformed solved-component record " +
                                std::to_string(s));
    }
    comp.models.reserve(num_models);
    for (size_t m = 0; m < num_models; ++m) {
      std::string kw_model;
      if (!(in >> kw_model) || kw_model != "model" ||
          !ReadEdges(in, &edges)) {
        return Status::ParseError("malformed component model record");
      }
      std::optional<Subhierarchy> g =
          Subhierarchy::FromPartialEdges(cp.num_categories, cp.root, edges);
      if (!g.has_value()) {
        return Status::InvalidArgument(
            "component model is not a root-reachable subhierarchy");
      }
      FrozenDimension model{
          std::move(*g),
          CAssignment(static_cast<size_t>(cp.num_categories), std::nullopt)};
      size_t assigned = 0;
      if (!(in >> assigned) ||
          assigned > static_cast<size_t>(cp.num_categories)) {
        return Status::ParseError("malformed component model assignment");
      }
      for (size_t a = 0; a < assigned; ++a) {
        int cat = -1;
        std::string escaped, name;
        if (!(in >> cat >> escaped) || cat < 0 ||
            cat >= cp.num_categories || !UnescapeName(escaped, &name)) {
          return Status::ParseError("malformed component model assignment");
        }
        model.names[cat] = std::move(name);
      }
      comp.models.push_back(std::move(model));
    }
    cp.solved.push_back(std::move(comp));
  }
  return cp;
}

Result<DimsatCheckpoint> ParseCheckpointFor(const DimensionSchema& ds,
                                            CategoryId root,
                                            std::string_view text) {
  OLAPDC_ASSIGN_OR_RETURN(DimsatCheckpoint cp,
                          DimsatCheckpoint::Deserialize(text));
  if (cp.root != root) {
    return Status::InvalidArgument(
        "checkpoint root " + std::to_string(cp.root) +
        " does not match query root " + std::to_string(root));
  }
  if (cp.num_categories != ds.hierarchy().num_categories()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(cp.num_categories) +
        " categories, schema has " +
        std::to_string(ds.hierarchy().num_categories()));
  }
  return cp;
}

}  // namespace olapdc
