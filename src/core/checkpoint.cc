#include "core/checkpoint.h"

#include <sstream>
#include <utility>

#include "core/schema.h"

namespace olapdc {

std::string DimsatCheckpoint::Serialize() const {
  std::ostringstream out;
  out << "dimsat-checkpoint v1\n";
  out << "root " << root << " categories " << num_categories << " frames "
      << frames.size() << "\n";
  for (const DimsatCheckpointFrame& frame : frames) {
    const auto edges = frame.g.Edges();
    out << "frame " << frame.next_mask << " " << frame.depth << " "
        << edges.size();
    for (const auto& [u, v] : edges) out << " " << u << " " << v;
    out << "\n";
  }
  return out.str();
}

Result<DimsatCheckpoint> DimsatCheckpoint::Deserialize(
    std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string magic, version;
  if (!(in >> magic >> version) || magic != "dimsat-checkpoint" ||
      version != "v1") {
    return Status::ParseError("not a dimsat-checkpoint v1 header");
  }
  DimsatCheckpoint cp;
  std::string kw_root, kw_categories, kw_frames;
  size_t num_frames = 0;
  if (!(in >> kw_root >> cp.root >> kw_categories >> cp.num_categories >>
        kw_frames >> num_frames) ||
      kw_root != "root" || kw_categories != "categories" ||
      kw_frames != "frames") {
    return Status::ParseError("malformed checkpoint summary line");
  }
  if (cp.num_categories <= 0 || cp.root < 0 ||
      cp.root >= cp.num_categories) {
    return Status::InvalidArgument("checkpoint root out of range");
  }
  if (num_frames > (size_t{1} << 24)) {
    return Status::ParseError("implausible checkpoint frame count");
  }
  cp.frames.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    std::string kw_frame;
    uint32_t next_mask = 0;
    int depth = 0;
    size_t num_edges = 0;
    if (!(in >> kw_frame >> next_mask >> depth >> num_edges) ||
        kw_frame != "frame" || depth < 0) {
      return Status::ParseError("malformed checkpoint frame " +
                                std::to_string(i));
    }
    std::vector<std::pair<CategoryId, CategoryId>> edges;
    edges.reserve(num_edges);
    for (size_t e = 0; e < num_edges; ++e) {
      CategoryId u, v;
      if (!(in >> u >> v)) {
        return Status::ParseError("truncated edge list in frame " +
                                  std::to_string(i));
      }
      edges.emplace_back(u, v);
    }
    std::optional<Subhierarchy> g =
        Subhierarchy::FromPartialEdges(cp.num_categories, cp.root, edges);
    if (!g.has_value()) {
      return Status::InvalidArgument(
          "checkpoint frame " + std::to_string(i) +
          " is not a root-reachable partial subhierarchy");
    }
    cp.frames.push_back(
        DimsatCheckpointFrame{std::move(*g), next_mask, depth});
  }
  return cp;
}

Result<DimsatCheckpoint> ParseCheckpointFor(const DimensionSchema& ds,
                                            CategoryId root,
                                            std::string_view text) {
  OLAPDC_ASSIGN_OR_RETURN(DimsatCheckpoint cp,
                          DimsatCheckpoint::Deserialize(text));
  if (cp.root != root) {
    return Status::InvalidArgument(
        "checkpoint root " + std::to_string(cp.root) +
        " does not match query root " + std::to_string(root));
  }
  if (cp.num_categories != ds.hierarchy().num_categories()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(cp.num_categories) +
        " categories, schema has " +
        std::to_string(ds.hierarchy().num_categories()));
  }
  return cp;
}

}  // namespace olapdc
