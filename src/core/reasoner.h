// Reasoner: a memoizing, budget-aware façade over the decision
// procedures. The interactive tools (summarizability matrix, view
// selection, aggregate navigation) ask many overlapping implication
// questions against one fixed schema; the reasoner caches definitive
// answers keyed by the canonical rendering of the query so repeated
// questions are O(1).
//
// Because category satisfiability is NP-complete (Theorem 4) and
// implication CoNP-complete (Theorem 2), some queries will not finish
// under any reasonable budget. The reasoner therefore answers in three
// values — kYes / kNo / kUnknown — never an error for a mere resource
// limit. Each query runs an iterative-deepening ladder: a small
// max_expand_calls budget first, grown geometrically on exhaustion, all
// rungs under one caller-supplied wall-clock Budget. Easy queries stay
// cheap, hard ones get the full budget, and a deadline or cancellation
// degrades to kUnknown with the partial work accounted.
//
// The cache is sound because a DimensionSchema is immutable: answers
// never need invalidation. Only definitive answers are cached; kUnknown
// is retried from scratch on the next ask. A Reasoner is
// single-threaded (like the rest of the library's mutable objects), but
// with options.dimsat.num_threads > 1 each ladder rung's search runs on
// the shared work-stealing pool (src/exec), so one Reasoner query can
// still saturate every core.

#ifndef OLAPDC_CORE_REASONER_H_
#define OLAPDC_CORE_REASONER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "common/retry.h"
#include "core/answer_cache.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/schema.h"
#include "core/summarizability.h"

namespace olapdc {

/// Three-valued answer of a budgeted decision procedure.
enum class Truth {
  kNo = 0,
  kYes = 1,
  /// The budget expired (or an internal fault fired) before the search
  /// finished; see ReasonerAnswer::reason.
  kUnknown = 2,
};

std::string_view TruthToString(Truth truth);

struct ReasonerAnswer {
  Truth truth = Truth::kUnknown;
  /// OK for definitive answers. For kUnknown: kDeadlineExceeded /
  /// kCancelled (wall-clock budget), kResourceExhausted (every ladder
  /// rung hit its expand cap), or the hard error that aborted the
  /// query.
  Status reason;
  /// DIMSAT work across every rung, partial rungs included — the
  /// budget actually consumed by this query.
  DimsatStats work;
  /// Ladder rungs run (0 on a cache hit).
  int attempts = 0;
  bool from_cache = false;

  bool definitive() const { return truth != Truth::kUnknown; }
  bool yes() const { return truth == Truth::kYes; }
};

struct ReasonerOptions {
  /// Base options for every DIMSAT run. `max_expand_calls` acts as the
  /// ladder's overall cap; `budget` is overridden per query by the
  /// caller-supplied Budget.
  DimsatOptions dimsat;
  /// Expand-call budget of the first ladder rung.
  uint64_t initial_expand_budget = 1 << 12;
  /// Geometric growth factor between rungs (>= 2).
  uint64_t expand_budget_growth = 8;
  /// Maximum ladder rungs per query (shed retries, which run no
  /// search, are bounded separately by `retry.max_retries`).
  int max_attempts = 5;
  /// Backoff policy for overload sheds (kUnavailable from an
  /// admission-gated pool): the rung is retried *without* growing its
  /// expand budget after an exponential, jittered backoff that honors
  /// the gate's retry-after-ms hint and never outlives the query's
  /// wall-clock Budget.
  RetryPolicy retry;
  /// Carry a DIMSAT checkpoint across satisfiability rungs: a rung
  /// interrupted by its expand cap leaves its live search frontier
  /// behind, and the next rung *continues* from it instead of
  /// re-exploring the tree. Effective for sequential searches
  /// (dimsat.num_threads <= 1, no trace); other query shapes restart
  /// each rung as before.
  bool resume_from_checkpoint = true;
  /// Cross-request closure cache (core/answer_cache.h); not owned, may
  /// be shared across Reasoners and threads. Consulted after the
  /// run-local cache misses; definitive answers are written to both.
  /// The caller owns epoch discipline via `shared_scope`.
  AnswerCache* shared_cache = nullptr;
  /// Prefix prepended to every shared-cache key — encode the
  /// (schema, Σ) content epoch here (e.g. "e<hex>/") so a theory edit
  /// can never serve a stale verdict. The run-local cache stays
  /// unprefixed (its Reasoner owns exactly one immutable schema).
  std::string shared_scope;
};

class Reasoner {
 public:
  explicit Reasoner(DimensionSchema schema, ReasonerOptions options = {});
  /// Convenience: wraps plain DimsatOptions (legacy call sites).
  Reasoner(DimensionSchema schema, DimsatOptions dimsat_options);

  const DimensionSchema& schema() const { return schema_; }

  /// Three-valued, budget-aware queries. `budget` may be null
  /// (unbounded deadline; the expand-call ladder still applies) and
  /// must outlive the call.
  ReasonerAnswer QueryImplies(const DimensionConstraint& alpha,
                              const Budget* budget = nullptr);
  ReasonerAnswer QuerySatisfiable(CategoryId category,
                                  const Budget* budget = nullptr);
  ReasonerAnswer QuerySummarizable(CategoryId target,
                                   const std::vector<CategoryId>& sources,
                                   const Budget* budget = nullptr);

  /// Two-valued legacy façade: kUnknown surfaces as the non-OK reason
  /// Status. Counterexamples are not retained in the cache; use
  /// olapdc::Implies() directly when you need the witness.
  Result<bool> Implies(const DimensionConstraint& alpha);
  Result<bool> IsSatisfiable(CategoryId category);
  Result<bool> IsSummarizable(CategoryId target,
                              const std::vector<CategoryId>& sources);

  struct Stats {
    uint64_t queries = 0;
    uint64_t hits = 0;
    /// Subset of `hits` answered by the shared AnswerCache (another
    /// request or Reasoner did the work).
    uint64_t shared_hits = 0;
    /// Queries that ended kUnknown.
    uint64_t unknown = 0;
    /// Ladder rungs beyond the first, across all queries.
    uint64_t retries = 0;
    /// Overload sheds the ladder backed off from and retried.
    uint64_t shed_backoffs = 0;
    /// Rungs that continued from a previous rung's checkpoint instead
    /// of restarting the search.
    uint64_t checkpoint_resumes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// One rung's outcome, fed back into the ladder.
  struct Attempt {
    Truth truth = Truth::kUnknown;
    Status status;      // OK, budget error, or hard error
    DimsatStats stats;  // work done by this rung
  };

  /// `attempt` runs one rung. `resume` (null when checkpoint resume is
  /// disabled) is the in/out frontier carried between rungs: non-empty
  /// on entry means "continue from here", and an attempt that is
  /// interrupted again writes the new frontier back. Query shapes that
  /// cannot resume simply ignore it.
  ReasonerAnswer RunLadder(
      const std::string& key, const Budget* budget,
      const std::function<Attempt(const DimsatOptions&, DimsatCheckpoint*)>&
          attempt);

  Result<bool> TwoValued(const ReasonerAnswer& answer);

  DimensionSchema schema_;
  ReasonerOptions options_;
  std::unordered_map<std::string, bool> cache_;
  Stats stats_;
};

}  // namespace olapdc

#endif  // OLAPDC_CORE_REASONER_H_
