// Reasoner: a memoizing façade over the decision procedures. The
// interactive tools (summarizability matrix, view selection, aggregate
// navigation) ask many overlapping implication questions against one
// fixed schema; the reasoner caches answers keyed by the canonical
// rendering of the query so repeated questions are O(1).
//
// The cache is sound because a DimensionSchema is immutable: answers
// never need invalidation. A Reasoner is single-threaded (like the rest
// of the library's mutable objects).

#ifndef OLAPDC_CORE_REASONER_H_
#define OLAPDC_CORE_REASONER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/schema.h"
#include "core/summarizability.h"

namespace olapdc {

class Reasoner {
 public:
  explicit Reasoner(DimensionSchema schema, DimsatOptions options = {});

  const DimensionSchema& schema() const { return schema_; }

  /// Cached ds |= alpha (counterexamples are not retained in the
  /// cache; use Implies() directly when you need the witness).
  Result<bool> Implies(const DimensionConstraint& alpha);

  /// Cached category satisfiability.
  Result<bool> IsSatisfiable(CategoryId category);

  /// Cached schema-level summarizability.
  Result<bool> IsSummarizable(CategoryId target,
                              const std::vector<CategoryId>& sources);

  struct Stats {
    uint64_t queries = 0;
    uint64_t hits = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Result<bool> Memoized(const std::string& key,
                        const std::function<Result<bool>()>& compute);

  DimensionSchema schema_;
  DimsatOptions options_;
  std::unordered_map<std::string, bool> cache_;
  Stats stats_;
};

}  // namespace olapdc

#endif  // OLAPDC_CORE_REASONER_H_
