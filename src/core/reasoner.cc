#include "core/reasoner.h"

#include <algorithm>
#include <utility>

#include "constraint/printer.h"

namespace olapdc {

Reasoner::Reasoner(DimensionSchema schema, DimsatOptions options)
    : schema_(std::move(schema)), options_(std::move(options)) {}

Result<bool> Reasoner::Memoized(
    const std::string& key, const std::function<Result<bool>()>& compute) {
  ++stats_.queries;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats_.hits;
    return it->second;
  }
  OLAPDC_ASSIGN_OR_RETURN(bool value, compute());
  cache_.emplace(key, value);
  return value;
}

Result<bool> Reasoner::Implies(const DimensionConstraint& alpha) {
  // Canonical key: root id + printed expression (printing is injective
  // up to re-parse, which is what semantic identity needs here).
  const std::string key = "i/" + std::to_string(alpha.root) + "/" +
                          ExprToString(schema_.hierarchy(), alpha.expr);
  return Memoized(key, [&]() -> Result<bool> {
    OLAPDC_ASSIGN_OR_RETURN(ImplicationResult r,
                            olapdc::Implies(schema_, alpha, options_));
    return r.implied;
  });
}

Result<bool> Reasoner::IsSatisfiable(CategoryId category) {
  const std::string key = "s/" + std::to_string(category);
  return Memoized(key, [&]() -> Result<bool> {
    return IsCategorySatisfiable(schema_, category, options_);
  });
}

Result<bool> Reasoner::IsSummarizable(CategoryId target,
                                      const std::vector<CategoryId>& sources) {
  std::vector<CategoryId> sorted = sources;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string key = "m/" + std::to_string(target);
  for (CategoryId c : sorted) key += "," + std::to_string(c);
  return Memoized(key, [&]() -> Result<bool> {
    OLAPDC_ASSIGN_OR_RETURN(
        SummarizabilityResult r,
        olapdc::IsSummarizable(schema_, target, sorted, options_));
    return r.summarizable;
  });
}

}  // namespace olapdc
