#include "core/reasoner.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/fault_injector.h"
#include "constraint/printer.h"
#include "exec/admission.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace olapdc {

std::string_view TruthToString(Truth truth) {
  switch (truth) {
    case Truth::kNo:
      return "no";
    case Truth::kYes:
      return "yes";
    case Truth::kUnknown:
      return "unknown";
  }
  return "unknown";
}

Reasoner::Reasoner(DimensionSchema schema, ReasonerOptions options)
    : schema_(std::move(schema)), options_(std::move(options)) {
  if (options_.expand_budget_growth < 2) options_.expand_budget_growth = 2;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.initial_expand_budget == 0) options_.initial_expand_budget = 1;
}

Reasoner::Reasoner(DimensionSchema schema, DimsatOptions dimsat_options)
    : Reasoner(std::move(schema), [&] {
        ReasonerOptions options;
        options.dimsat = std::move(dimsat_options);
        return options;
      }()) {}

namespace {

/// Inventory registration for the chaos campaign's site sweep.
[[maybe_unused]] const bool kQuerySite = RegisterFaultSite("reasoner.query");

/// Publishes one finished query into the registry (olapdc.reasoner.*)
/// and annotates its trace span. The ladder's per-rung DIMSAT runs
/// already flush their own olapdc.dimsat.* metrics.
void ObserveQuery(obs::ObsSpan& span, const std::string& key,
                  const ReasonerAnswer& answer, double elapsed_us) {
  if (obs::MetricsEnabled()) {
    obs::Count("olapdc.reasoner.queries");
    obs::Count("olapdc.reasoner.cache_hits", answer.from_cache ? 1 : 0);
    obs::Count("olapdc.reasoner.cache_misses", answer.from_cache ? 0 : 1);
    obs::Count("olapdc.reasoner.ladder_rungs",
               static_cast<uint64_t>(answer.attempts));
    obs::Count("olapdc.reasoner.unknown",
               answer.truth == Truth::kUnknown ? 1 : 0);
    obs::LatencyUs("olapdc.reasoner.latency_us", elapsed_us);
  }
  if (span.active()) {
    span.AddStat("key", key);
    span.AddStat("truth", TruthToString(answer.truth));
    span.AddStat("from_cache", answer.from_cache);
    span.AddStat("attempts", answer.attempts);
    span.AddStat("expand_calls", answer.work.expand_calls);
  }
}

}  // namespace

ReasonerAnswer Reasoner::RunLadder(
    const std::string& key, const Budget* budget,
    const std::function<Attempt(const DimsatOptions&, DimsatCheckpoint*)>&
        attempt) {
  ++stats_.queries;
  ReasonerAnswer answer;

  obs::ObsSpan span("reasoner.query");
  const bool observed = obs::MetricsEnabled() || span.active();
  const auto start = observed ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point();
  auto finish = [&]() {
    if (!observed) return;
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    ObserveQuery(span, key, answer, elapsed_us);
  };

  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats_.hits;
    answer.truth = it->second ? Truth::kYes : Truth::kNo;
    answer.from_cache = true;
    finish();
    return answer;
  }
  // The shared closure cache (layer c): another request — or another
  // Reasoner instance over the same epoch — may already have derived
  // this verdict. A hit is promoted into the run-local map so repeats
  // within this Reasoner skip even the shared cache's shard lock.
  if (options_.shared_cache != nullptr) {
    bool yes = false;
    if (options_.shared_cache->Lookup(options_.shared_scope + key, &yes)) {
      ++stats_.hits;
      ++stats_.shared_hits;
      cache_.emplace(key, yes);
      answer.truth = yes ? Truth::kYes : Truth::kNo;
      answer.from_cache = true;
      finish();
      return answer;
    }
  }

  // Iterative deepening: each rung widens the expand-call budget
  // geometrically; the caller's wall-clock Budget caps the whole
  // ladder. With checkpoint resume the rungs *continue* one another,
  // so the ladder explores each search node at most once; without it,
  // restarting wastes at most a constant factor (geometric series)
  // over running the final rung alone.
  uint64_t rung_budget = options_.initial_expand_budget;
  const uint64_t overall_cap = options_.dimsat.max_expand_calls;
  // Frontier carried between rungs; jitter salt desynchronizes
  // concurrent retriers of different queries.
  DimsatCheckpoint resume;
  const uint64_t salt = std::hash<std::string>{}(key);
  int shed_retries = 0;
  for (int rung = 0; rung < options_.max_attempts; ++rung) {
    if (rung > 0) ++stats_.retries;
    ++answer.attempts;

    Status fault = FaultInjector::Global().MaybeFail("reasoner.query");
    if (!fault.ok()) {
      answer.reason = std::move(fault);
      break;
    }

    DimsatOptions rung_options = options_.dimsat;
    rung_options.budget = budget;
    rung_options.max_expand_calls = std::min(rung_budget, overall_cap);
    const bool last_possible_rung =
        rung + 1 >= options_.max_attempts || rung_options.max_expand_calls >= overall_cap;

    Attempt outcome = attempt(
        rung_options, options_.resume_from_checkpoint ? &resume : nullptr);
    AccumulateStats(&answer.work, outcome.stats);

    if (outcome.status.ok()) {
      answer.truth = outcome.truth;
      answer.reason = Status::OK();
      const bool yes = outcome.truth == Truth::kYes;
      cache_.emplace(key, yes);
      if (options_.shared_cache != nullptr) {
        options_.shared_cache->Insert(options_.shared_scope + key, yes);
      }
      finish();
      return answer;
    }
    answer.reason = outcome.status;

    // An overload shed ran no search at all: back off (honoring the
    // admission gate's retry-after hint) and retry the *same* rung —
    // there is nothing to deepen, the pool was just full.
    if (outcome.status.code() == StatusCode::kUnavailable &&
        options_.retry.ShouldRetry(outcome.status, shed_retries)) {
      ++stats_.shed_backoffs;
      if (obs::MetricsEnabled()) obs::Count("olapdc.reasoner.backoffs");
      const double hint_ms = static_cast<double>(
          exec::RetryAfterMsFromStatus(outcome.status));
      if (options_.retry.BackoffMs(shed_retries, salt) < hint_ms &&
          (budget == nullptr || budget->RemainingMs() > hint_ms)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(hint_ms));
      } else {
        options_.retry.SleepBackoff(shed_retries, budget, salt);
      }
      ++shed_retries;
      if (budget != nullptr && !budget->Check().ok()) {
        answer.reason = budget->Check();
        break;
      }
      --rung;  // the rung neither ran nor deepened
      continue;
    }

    // Only an *expand-cap* exhaustion is retryable by deepening:
    // growing the budget can help (and with a carried checkpoint the
    // next rung continues instead of restarting). A deadline, a
    // cancellation, or a failure that made no progress (e.g.
    // path_limit during constraint preparation) will recur identically
    // — stop the ladder.
    const bool expand_cap_hit =
        outcome.status.code() == StatusCode::kResourceExhausted &&
        outcome.stats.expand_calls >= rung_options.max_expand_calls;
    if (!expand_cap_hit || last_possible_rung) break;
    rung_budget *= options_.expand_budget_growth;
  }

  answer.truth = Truth::kUnknown;
  ++stats_.unknown;
  finish();
  return answer;
}

ReasonerAnswer Reasoner::QueryImplies(const DimensionConstraint& alpha,
                                      const Budget* budget) {
  // Canonical key: root id + printed expression (printing is injective
  // up to re-parse, which is what semantic identity needs here).
  const std::string key = "i/" + std::to_string(alpha.root) + "/" +
                          ExprToString(schema_.hierarchy(), alpha.expr);
  return RunLadder(key, budget, [&](const DimsatOptions& options,
                                    DimsatCheckpoint*) {
    Attempt a;
    Result<ImplicationResult> r = olapdc::Implies(schema_, alpha, options);
    if (!r.ok()) {
      a.status = r.status();
      return a;
    }
    a.stats = r->stats;
    a.status = r->status;
    if (a.status.ok()) a.truth = r->implied ? Truth::kYes : Truth::kNo;
    return a;
  });
}

ReasonerAnswer Reasoner::QuerySatisfiable(CategoryId category,
                                          const Budget* budget) {
  const std::string key = "s/" + std::to_string(category);
  return RunLadder(key, budget, [&](const DimsatOptions& options,
                                    DimsatCheckpoint* resume) {
    Attempt a;
    DimsatResult r;
    // Single sequential search: the one query shape whose rungs can
    // continue one another through a checkpoint instead of restarting.
    if (resume != nullptr && options.num_threads <= 1 &&
        !options.collect_trace) {
      DimsatOptions opts = options;
      opts.checkpoint = resume;
      if (!resume->empty()) {
        ++stats_.checkpoint_resumes;
        DimsatCheckpoint from = std::move(*resume);
        resume->frames.clear();
        r = ResumeDimsat(schema_, category, opts, std::move(from));
      } else {
        r = RunDimsat(schema_, category, opts);
      }
    } else {
      r = RunDimsat(schema_, category, options);
    }
    a.stats = r.stats;
    // A witness is definitive regardless of an expiring budget; a
    // truncated negative is not.
    if (r.satisfiable) {
      a.truth = Truth::kYes;
    } else if (r.status.ok()) {
      a.truth = Truth::kNo;
    } else {
      a.status = r.status;
    }
    return a;
  });
}

ReasonerAnswer Reasoner::QuerySummarizable(
    CategoryId target, const std::vector<CategoryId>& sources,
    const Budget* budget) {
  std::vector<CategoryId> sorted = sources;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::string key = "m/" + std::to_string(target);
  for (CategoryId c : sorted) key += "," + std::to_string(c);
  return RunLadder(key, budget, [&](const DimsatOptions& options,
                                    DimsatCheckpoint*) {
    Attempt a;
    Result<SummarizabilityResult> r =
        olapdc::IsSummarizable(schema_, target, sorted, options);
    if (!r.ok()) {
      a.status = r.status();
      return a;
    }
    a.stats = r->stats;
    a.status = r->status;
    if (a.status.ok()) a.truth = r->summarizable ? Truth::kYes : Truth::kNo;
    return a;
  });
}

Result<bool> Reasoner::TwoValued(const ReasonerAnswer& answer) {
  if (answer.truth == Truth::kUnknown) {
    return answer.reason.ok()
               ? Status::Internal("unknown answer without a reason")
               : answer.reason;
  }
  return answer.truth == Truth::kYes;
}

Result<bool> Reasoner::Implies(const DimensionConstraint& alpha) {
  return TwoValued(QueryImplies(alpha));
}

Result<bool> Reasoner::IsSatisfiable(CategoryId category) {
  return TwoValued(QuerySatisfiable(category));
}

Result<bool> Reasoner::IsSummarizable(CategoryId target,
                                      const std::vector<CategoryId>& sources) {
  return TwoValued(QuerySummarizable(target, sources));
}

}  // namespace olapdc
