// c-assignments (paper Section 5): a choice, for every category of a
// subhierarchy, of either a constant from Const_ds or the reserved
// symbol nk ("no constant mentioned in Sigma"). A subhierarchy g
// induces a frozen dimension iff some c-assignment satisfies the
// circled constraint set Sigma(ds,c) ∘ g (Proposition 2).
//
// The search below enumerates assignments with backtracking and
// three-valued partial evaluation. It only branches on categories that
// are actually mentioned by surviving equality atoms; all other
// categories take nk, which is sound and complete because an
// unmentioned constant is observationally equivalent to nk.
//
// Proposition 2 declares c-assignments injective; Definition 5 does
// not, and injectivity over nk is unsatisfiable whenever two categories
// lack constants. We therefore enforce injectivity only among real
// constants, and only when `require_injective` is set (DESIGN.md
// deviation 4).

#ifndef OLAPDC_CORE_ASSIGNMENT_H_
#define OLAPDC_CORE_ASSIGNMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "constraint/expr.h"
#include "core/schema.h"
#include "core/subhierarchy.h"

namespace olapdc {

/// A c-assignment: per category, the chosen constant, or nullopt = nk.
using CAssignment = std::vector<std::optional<std::string>>;

struct AssignmentOptions {
  /// Forbid two categories sharing the same (real) constant, per the
  /// literal Proposition 2 wording.
  bool require_injective = false;
  /// Collect every satisfying assignment instead of stopping at one.
  bool enumerate_all = false;
  /// Cap on collected assignments in enumerate_all mode.
  size_t max_results = 1 << 20;
};

struct AssignmentSearchResult {
  /// The satisfying assignments found (at most 1 unless enumerate_all).
  std::vector<CAssignment> assignments;
  /// Number of (partial) candidate choices explored.
  uint64_t tried = 0;
};

/// Searches for c-assignments of `g` satisfying every expression in
/// `circled` (outputs of ApplyCircleToConstraint + Simplify: only
/// equality atoms and truth literals remain; a literal False entry
/// makes the search trivially empty).
AssignmentSearchResult FindAssignments(const Subhierarchy& g,
                                       const std::vector<ExprPtr>& circled,
                                       const AssignmentOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CORE_ASSIGNMENT_H_
