#include "core/location_example.h"

#include <utility>
#include <vector>

#include "constraint/parser.h"

namespace olapdc {

Result<HierarchySchemaPtr> LocationHierarchy() {
  HierarchySchemaBuilder builder;
  builder.AddEdge("Store", "City")
      .AddEdge("Store", "SaleRegion")
      .AddEdge("City", "Province")
      .AddEdge("City", "State")
      .AddEdge("City", "Country")  // the Example 3 shortcut
      .AddEdge("Province", "SaleRegion")
      .AddEdge("State", "SaleRegion")
      .AddEdge("State", "Country")
      .AddEdge("SaleRegion", "Country")
      .AddEdge("Country", "All");
  return builder.BuildShared();
}

Result<DimensionSchema> LocationSchema() {
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr hierarchy, LocationHierarchy());

  const std::vector<std::pair<const char*, const char*>> texts = {
      {"(a)", "Store/City"},
      {"(b)", "Store.SaleRegion"},
      {"(c)", "City = 'Washington' <-> City/Country"},
      {"(d)", "City = 'Washington' -> City.Country = 'USA'"},
      {"(e)", "State.Country = 'Mexico' | State.Country = 'USA'"},
      {"(f)", "State.Country = 'Mexico' <-> State/SaleRegion"},
      {"(g)", "Province.Country = 'Canada'"},
  };
  std::vector<DimensionConstraint> constraints;
  constraints.reserve(texts.size());
  for (const auto& [label, text] : texts) {
    OLAPDC_ASSIGN_OR_RETURN(DimensionConstraint c,
                            ParseConstraint(*hierarchy, text, label));
    constraints.push_back(std::move(c));
  }
  return DimensionSchema(std::move(hierarchy), std::move(constraints));
}

Result<DimensionInstance> LocationInstance() {
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr hierarchy, LocationHierarchy());
  DimensionInstanceBuilder builder(std::move(hierarchy));

  // Countries.
  builder.AddMember("Canada", "Country")
      .AddMember("Mexico", "Country")
      .AddMember("USA", "Country");

  // Sale regions.
  builder.AddMemberUnder("SR-Canada", "SaleRegion", "Canada")
      .AddMemberUnder("SR-Mexico", "SaleRegion", "Mexico")
      .AddMemberUnder("SR-USA", "SaleRegion", "USA");

  // Canada: cities roll up through a province to a sale region.
  builder.AddMemberUnder("Ontario", "Province", "SR-Canada");
  builder.AddMemberUnder("Toronto", "City", "Ontario");
  builder.AddMemberUnder("Ottawa", "City", "Ontario");

  // Mexico: cities roll up through states, which reach SaleRegion
  // (constraint (f)) and through it the country.
  builder.AddMemberUnder("DF", "State", "SR-Mexico");
  builder.AddMemberUnder("NuevoLeon", "State", "SR-Mexico");
  builder.AddMemberUnder("MexicoCity", "City", "DF");
  builder.AddMemberUnder("Monterrey", "City", "NuevoLeon");

  // USA: states roll up directly to the country, skipping SaleRegion.
  builder.AddMemberUnder("Texas", "State", "USA");
  builder.AddMemberUnder("Austin", "City", "Texas");
  // Washington is the Example 1 exception: a city rolling up directly
  // to the country (the City -> Country shortcut edge of the schema).
  builder.AddMemberUnder("Washington", "City", "USA");

  // Stores. Canadian and Mexican stores reach SaleRegion through their
  // city chain; US stores are linked to a sale region directly
  // (constraint (b) requires every store to reach SaleRegion).
  builder.AddMemberUnder("st-tor-1", "Store", "Toronto");
  builder.AddMemberUnder("st-tor-2", "Store", "Toronto");
  builder.AddMemberUnder("st-ott-1", "Store", "Ottawa");
  builder.AddMemberUnder("st-mex-1", "Store", "MexicoCity");
  builder.AddMemberUnder("st-mty-1", "Store", "Monterrey");
  builder.AddMemberUnder("st-aus-1", "Store", "Austin");
  builder.AddChildParent("st-aus-1", "SR-USA");
  builder.AddMemberUnder("st-was-1", "Store", "Washington");
  builder.AddChildParent("st-was-1", "SR-USA");

  return builder.Build();
}

}  // namespace olapdc
