// Schema diagnostics built on the implication engine — the paper's
// Section 6 design-stage story made concrete:
//  - redundant constraints: members of Sigma already implied by the
//    rest (safe to drop; keeping them only slows CHECK down);
//  - unsatisfiable-category cores: a minimal subset of Sigma that
//    already makes a category unsatisfiable (the actionable part of an
//    "UNSATISFIABLE" answer).

#ifndef OLAPDC_CORE_DIAGNOSTICS_H_
#define OLAPDC_CORE_DIAGNOSTICS_H_

#include <vector>

#include "common/result.h"
#include "core/dimsat.h"
#include "core/schema.h"

namespace olapdc {

/// Indices (into ds.constraints()) of constraints implied by the other
/// constraints of the schema. Order-insensitive: each constraint is
/// tested against all the others, so mutually-redundant pairs are both
/// reported.
Result<std::vector<size_t>> FindRedundantConstraints(
    const DimensionSchema& ds, const DimsatOptions& options = {});

/// A copy of ds with a minimal *irredundant* constraint set: greedily
/// drops constraints that the remaining set implies (processing in
/// index order, so the result keeps earlier constraints when two are
/// equivalent).
Result<DimensionSchema> MinimizeConstraintSet(
    const DimensionSchema& ds, const DimsatOptions& options = {});

/// For a category unsatisfiable in ds: a minimal (irreducible, not
/// necessarily minimum) subset of Sigma under which it is still
/// unsatisfiable — deletion-based MUS extraction. InvalidArgument if
/// the category is satisfiable.
Result<std::vector<size_t>> UnsatisfiableCore(
    const DimensionSchema& ds, CategoryId category,
    const DimsatOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CORE_DIAGNOSTICS_H_
