#include "core/summarizability.h"

#include <optional>
#include <utility>

#include "constraint/evaluator.h"
#include "exec/work_stealing_pool.h"

namespace olapdc {

Result<DimensionConstraint> SummarizabilityConstraint(
    const HierarchySchema& schema, CategoryId bottom, CategoryId c,
    const std::vector<CategoryId>& s) {
  if (bottom == schema.all()) {
    return Status::InvalidArgument(
        "bottom category cannot be All (constraints cannot be rooted "
        "there)");
  }
  std::vector<ExprPtr> through;
  through.reserve(s.size());
  for (CategoryId ci : s) {
    if (ci < 0 || ci >= schema.num_categories()) {
      return Status::InvalidArgument("category id out of range in S");
    }
    through.push_back(MakeThroughAtom(bottom, ci, c));
  }
  ExprPtr expr = MakeImplies(MakeComposedAtom(bottom, c),
                             MakeExactlyOne(std::move(through)));
  return MakeConstraintWithRoot(schema, bottom, std::move(expr));
}

Result<SummarizabilityResult> IsSummarizable(
    const DimensionSchema& ds, CategoryId c,
    const std::vector<CategoryId>& s, const DimsatOptions& options) {
  const HierarchySchema& schema = ds.hierarchy();
  if (c < 0 || c >= schema.num_categories()) {
    return Status::InvalidArgument("target category out of range");
  }

  SummarizabilityResult result;
  result.summarizable = true;

  std::vector<CategoryId> bottoms;
  for (CategoryId bottom : schema.bottom_categories()) {
    if (bottom == schema.all()) continue;  // degenerate one-node schema
    bottoms.push_back(bottom);
  }

  if (options.num_threads > 1 && bottoms.size() > 1) {
    // Parallel sweep: every per-bottom test becomes a pool task (and
    // its DIMSAT search parallelizes further on the same pool). The
    // constraints are built up front so construction errors stay
    // deterministic; results merge in bottom order below.
    std::vector<DimensionConstraint> alphas;
    alphas.reserve(bottoms.size());
    for (CategoryId bottom : bottoms) {
      OLAPDC_ASSIGN_OR_RETURN(
          DimensionConstraint alpha,
          SummarizabilityConstraint(schema, bottom, c, s));
      alphas.push_back(std::move(alpha));
    }
    exec::WorkStealingPool& pool =
        options.pool != nullptr ? *options.pool : exec::ProcessPool();
    std::vector<std::optional<Result<ImplicationResult>>> slots(
        bottoms.size());
    {
      exec::TaskGroup group(&pool);
      for (size_t i = 0; i < bottoms.size(); ++i) {
        group.Spawn(
            [&, i] { slots[i].emplace(Implies(ds, alphas[i], options)); });
      }
      group.Wait();
    }
    for (size_t i = 0; i < bottoms.size(); ++i) {
      Result<ImplicationResult>& slot = *slots[i];
      OLAPDC_RETURN_NOT_OK(slot.status());
      ImplicationResult implication = std::move(slot).ValueOrDie();
      AccumulateStats(&result.stats, implication.stats);
      if (!implication.status.ok()) {
        result.status = implication.status;
        result.summarizable = false;
        return result;
      }
      SummarizabilityResult::PerBottom detail;
      detail.bottom = bottoms[i];
      detail.implied = implication.implied;
      detail.counterexample = std::move(implication.counterexample);
      result.summarizable &= implication.implied;
      result.details.push_back(std::move(detail));
    }
    return result;
  }

  for (CategoryId bottom : bottoms) {
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint alpha,
        SummarizabilityConstraint(schema, bottom, c, s));
    OLAPDC_ASSIGN_OR_RETURN(ImplicationResult implication,
                            Implies(ds, alpha, options));
    AccumulateStats(&result.stats, implication.stats);
    if (!implication.status.ok()) {
      // Budget expired mid-test: stop, keep the bottoms already
      // decided as a partial answer.
      result.status = implication.status;
      result.summarizable = false;
      return result;
    }
    SummarizabilityResult::PerBottom detail;
    detail.bottom = bottom;
    detail.implied = implication.implied;
    detail.counterexample = std::move(implication.counterexample);
    result.summarizable &= implication.implied;
    result.details.push_back(std::move(detail));
  }
  return result;
}

Result<bool> IsSummarizableInInstance(const DimensionInstance& d,
                                      CategoryId c,
                                      const std::vector<CategoryId>& s) {
  const HierarchySchema& schema = d.hierarchy();
  for (CategoryId bottom : schema.bottom_categories()) {
    if (bottom == schema.all()) continue;
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint alpha,
        SummarizabilityConstraint(schema, bottom, c, s));
    if (!Satisfies(d, alpha)) return false;
  }
  return true;
}

Result<std::vector<MemberId>> SummarizabilityViolators(
    const DimensionInstance& d, CategoryId c,
    const std::vector<CategoryId>& s) {
  const HierarchySchema& schema = d.hierarchy();
  std::vector<MemberId> violators;
  for (CategoryId bottom : schema.bottom_categories()) {
    if (bottom == schema.all()) continue;
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint alpha,
        SummarizabilityConstraint(schema, bottom, c, s));
    for (MemberId m : ViolatingMembers(d, alpha)) {
      violators.push_back(m);
    }
  }
  return violators;
}

}  // namespace olapdc
