#include "core/summarizability.h"

#include <utility>

#include "constraint/evaluator.h"

namespace olapdc {

Result<DimensionConstraint> SummarizabilityConstraint(
    const HierarchySchema& schema, CategoryId bottom, CategoryId c,
    const std::vector<CategoryId>& s) {
  if (bottom == schema.all()) {
    return Status::InvalidArgument(
        "bottom category cannot be All (constraints cannot be rooted "
        "there)");
  }
  std::vector<ExprPtr> through;
  through.reserve(s.size());
  for (CategoryId ci : s) {
    if (ci < 0 || ci >= schema.num_categories()) {
      return Status::InvalidArgument("category id out of range in S");
    }
    through.push_back(MakeThroughAtom(bottom, ci, c));
  }
  ExprPtr expr = MakeImplies(MakeComposedAtom(bottom, c),
                             MakeExactlyOne(std::move(through)));
  return MakeConstraintWithRoot(schema, bottom, std::move(expr));
}

Result<SummarizabilityResult> IsSummarizable(
    const DimensionSchema& ds, CategoryId c,
    const std::vector<CategoryId>& s, const DimsatOptions& options) {
  const HierarchySchema& schema = ds.hierarchy();
  if (c < 0 || c >= schema.num_categories()) {
    return Status::InvalidArgument("target category out of range");
  }

  SummarizabilityResult result;
  result.summarizable = true;
  for (CategoryId bottom : schema.bottom_categories()) {
    if (bottom == schema.all()) continue;  // degenerate one-node schema
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint alpha,
        SummarizabilityConstraint(schema, bottom, c, s));
    OLAPDC_ASSIGN_OR_RETURN(ImplicationResult implication,
                            Implies(ds, alpha, options));
    AccumulateStats(&result.stats, implication.stats);
    if (!implication.status.ok()) {
      // Budget expired mid-test: stop, keep the bottoms already
      // decided as a partial answer.
      result.status = implication.status;
      result.summarizable = false;
      return result;
    }
    SummarizabilityResult::PerBottom detail;
    detail.bottom = bottom;
    detail.implied = implication.implied;
    detail.counterexample = std::move(implication.counterexample);
    result.summarizable &= implication.implied;
    result.details.push_back(std::move(detail));
  }
  return result;
}

Result<bool> IsSummarizableInInstance(const DimensionInstance& d,
                                      CategoryId c,
                                      const std::vector<CategoryId>& s) {
  const HierarchySchema& schema = d.hierarchy();
  for (CategoryId bottom : schema.bottom_categories()) {
    if (bottom == schema.all()) continue;
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint alpha,
        SummarizabilityConstraint(schema, bottom, c, s));
    if (!Satisfies(d, alpha)) return false;
  }
  return true;
}

Result<std::vector<MemberId>> SummarizabilityViolators(
    const DimensionInstance& d, CategoryId c,
    const std::vector<CategoryId>& s) {
  const HierarchySchema& schema = d.hierarchy();
  std::vector<MemberId> violators;
  for (CategoryId bottom : schema.bottom_categories()) {
    if (bottom == schema.all()) continue;
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint alpha,
        SummarizabilityConstraint(schema, bottom, c, s));
    for (MemberId m : ViolatingMembers(d, alpha)) {
      violators.push_back(m);
    }
  }
  return violators;
}

}  // namespace olapdc
