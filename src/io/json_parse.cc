#include "io/json_parse.h"

#include <cstdlib>

namespace olapdc {

namespace {

struct Parser {
  std::string_view text;
  const JsonParseOptions& options;
  size_t pos = 0;
  int depth = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      // Derive line:column (1-based) from the failure offset, matching
      // the schema parser's "line L:C: message" convention.
      int line = 1;
      int column = 1;
      const size_t stop = pos < text.size() ? pos : text.size();
      for (size_t i = 0; i < stop; ++i) {
        if (text[i] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
      }
      error = "line " + std::to_string(line) + ":" + std::to_string(column) +
              ": " + message;
    }
    return false;
  }

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos >= text.size()) return Fail("dangling escape");
      char esc = text[pos++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    if (pos >= text.size()) return Fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
      if (++depth > options.max_depth) return Fail("nesting too deep");
      ++pos;
      out->type = JsonValue::Type::kObject;
      SkipSpace();
      if (Consume('}')) {
        --depth;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return Fail("expected ':'");
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        if (Consume('}')) {
          --depth;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      if (++depth > options.max_depth) return Fail("nesting too deep");
      ++pos;
      out->type = JsonValue::Type::kArray;
      SkipSpace();
      if (Consume(']')) {
        --depth;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        if (Consume(']')) {
          --depth;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos += 4;
      return true;
    }
    // Number. strtod needs a terminated buffer only when the view may
    // not be NUL-terminated at its end; copy the longest plausible
    // number prefix instead of trusting text.data() to extend past
    // size().
    size_t end_pos = pos;
    while (end_pos < text.size() &&
           (text[end_pos] == '+' || text[end_pos] == '-' ||
            text[end_pos] == '.' || text[end_pos] == 'e' ||
            text[end_pos] == 'E' ||
            (text[end_pos] >= '0' && text[end_pos] <= '9'))) {
      ++end_pos;
    }
    if (end_pos == pos) return Fail("unexpected token");
    const std::string buffer(text.substr(pos, end_pos - pos));
    char* end = nullptr;
    double value = std::strtod(buffer.c_str(), &end);
    if (end == buffer.c_str()) return Fail("unexpected token");
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    pos += static_cast<size_t>(end - buffer.c_str());
    return true;
  }
};

std::string TypeName(JsonValue::Type type) {
  switch (type) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

Status FieldError(std::string_view key, const std::string& what) {
  return Status::InvalidArgument("field \"" + std::string(key) + "\" " +
                                 what);
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<const JsonValue*> JsonValue::Require(std::string_view key) const {
  if (!is_object()) {
    return FieldError(key, "requires an object, got " + TypeName(type));
  }
  const JsonValue* value = Find(key);
  if (value == nullptr) return FieldError(key, "is missing");
  return value;
}

Result<std::string> JsonValue::RequireString(std::string_view key) const {
  OLAPDC_ASSIGN_OR_RETURN(const JsonValue* value, Require(key));
  if (!value->is_string()) {
    return FieldError(key, "must be a string, got " + TypeName(value->type));
  }
  return value->string_value;
}

Result<double> JsonValue::RequireNumber(std::string_view key) const {
  OLAPDC_ASSIGN_OR_RETURN(const JsonValue* value, Require(key));
  if (!value->is_number()) {
    return FieldError(key, "must be a number, got " + TypeName(value->type));
  }
  return value->number_value;
}

Result<int64_t> JsonValue::RequireInt(std::string_view key) const {
  OLAPDC_ASSIGN_OR_RETURN(double number, RequireNumber(key));
  const int64_t integral = static_cast<int64_t>(number);
  if (static_cast<double>(integral) != number) {
    return FieldError(key, "must be an integer");
  }
  return integral;
}

Result<const JsonValue*> JsonValue::RequireArray(std::string_view key) const {
  OLAPDC_ASSIGN_OR_RETURN(const JsonValue* value, Require(key));
  if (!value->is_array()) {
    return FieldError(key, "must be an array, got " + TypeName(value->type));
  }
  return value;
}

Result<int64_t> JsonValue::OptionalInt(std::string_view key,
                                       int64_t default_value) const {
  if (!is_object() || Find(key) == nullptr) return default_value;
  return RequireInt(key);
}

Result<std::string> JsonValue::OptionalString(std::string_view key,
                                              std::string default_value) const {
  if (!is_object() || Find(key) == nullptr) return default_value;
  return RequireString(key);
}

Result<bool> JsonValue::OptionalBool(std::string_view key,
                                     bool default_value) const {
  if (!is_object()) return default_value;
  const JsonValue* value = Find(key);
  if (value == nullptr) return default_value;
  if (!value->is_bool()) {
    return FieldError(key, "must be a bool, got " + TypeName(value->type));
  }
  return value->bool_value;
}

bool ParseJsonText(std::string_view text, JsonValue* out, std::string* error,
                   const JsonParseOptions& options) {
  Parser parser{text, options, 0, 0, {}};
  if (!parser.ParseValue(out)) {
    if (error != nullptr) *error = parser.error;
    return false;
  }
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    parser.Fail("trailing garbage after document");
    if (error != nullptr) *error = parser.error;
    return false;
  }
  return true;
}

Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseOptions& options) {
  JsonValue value;
  std::string error;
  if (!ParseJsonText(text, &value, &error, options)) {
    return Status::ParseError(error);
  }
  return value;
}

}  // namespace olapdc
