// Durable files: the crash-durability primitive under olapdcd's
// snapshot plane (docs/robustness.md "Crash durability & recovery").
//
// A durable file is a sequence of CRC32-framed, length-prefixed
// records behind a fixed magic line:
//
//   "olapdc-durable v1\n"
//   [u32 LE payload length][u32 LE CRC32(payload)][payload bytes] ...
//
// Writing is all-or-nothing at the *file* level: WriteDurableFile
// writes every record to `path + ".tmp"`, fsyncs the data, atomically
// rename()s over `path`, and fsyncs the parent directory, so a reader
// (or a restart) only ever sees either the previous complete file or
// the new complete file — never a half-written one. Any failure along
// the way removes the temp file and leaves the previous file intact.
//
// Reading is recovery, not parsing: a kill -9 mid-write, a power cut
// that loses un-fsynced tail pages, or a stray bit flip must never
// take the next startup down. ReadDurableFile salvages the longest
// valid prefix of records — a torn tail (truncated frame or payload)
// is dropped and counted, a CRC mismatch drops the record and
// everything after it (framing cannot resync past a corrupt length),
// and the caller is told exactly what was recovered. Only a missing
// file (NotFound) or a wrong magic line (ParseError: it is not a
// durable file at all) fail the read.
//
// Fault injection: the writer probes the `durable.write`,
// `durable.fsync`, and `durable.rename` sites (common/fault_injector.h)
// before the corresponding syscall, so disk-full and failed-fsync
// paths are testable deterministically — an injected fault takes the
// same cleanup path a real ENOSPC would.
//
// Metrics: olapdc.durable.writes / write_failures / bytes on the write
// side; olapdc.durable.recovered_records / torn_tail_truncations /
// crc_drops on the recovery side (inventory in docs/observability.md).

#ifndef OLAPDC_IO_DURABLE_FILE_H_
#define OLAPDC_IO_DURABLE_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace olapdc {

/// CRC-32 (IEEE 802.3, reflected) of `bytes` — the per-record frame
/// checksum. Exposed so tests and harnesses can forge/verify frames.
uint32_t Crc32(std::string_view bytes);

struct DurableWriteStats {
  uint64_t records = 0;
  /// Total file size written (magic + frames + payloads).
  uint64_t bytes = 0;
};

/// Atomically replaces `path` with a durable file holding `records`,
/// via temp + fsync + rename + parent-directory fsync. On any failure
/// (injected or real) the temp file is removed and the previous
/// `path`, if any, is left untouched. Records may hold arbitrary
/// bytes; a record larger than kMaxDurableRecordBytes is refused.
Status WriteDurableFile(const std::string& path,
                        const std::vector<std::string>& records,
                        DurableWriteStats* stats = nullptr);

/// Ceiling on one record's payload (and on what the reader will
/// believe a length frame): keeps a corrupt length word from turning
/// into a multi-gigabyte allocation.
inline constexpr uint32_t kMaxDurableRecordBytes = 1u << 30;

struct DurableReadResult {
  /// The longest valid prefix of records.
  std::vector<std::string> records;
  /// Size of the file as read.
  uint64_t bytes_total = 0;
  /// Bytes covered by the magic + the valid records.
  uint64_t bytes_salvaged = 0;
  /// 1 if trailing bytes past the last valid record were dropped
  /// (torn frame, truncated payload, or an implausible length word).
  uint64_t torn_tail_truncations = 0;
  /// 1 if the first dropped record framed correctly but failed its
  /// CRC (bit flip) — everything after it is dropped too.
  uint64_t crc_drops = 0;
};

/// Recovers `path`: salvages the valid record prefix and reports what
/// was dropped. With `truncate_torn_tail`, the file itself is
/// truncated back to the last valid record so later readers see a
/// clean file. Fails only with NotFound (no file) or ParseError
/// (wrong magic — not a durable file); torn tails and CRC failures
/// are recovery, not errors.
Result<DurableReadResult> ReadDurableFile(const std::string& path,
                                          bool truncate_torn_tail = false);

}  // namespace olapdc

#endif  // OLAPDC_IO_DURABLE_FILE_H_
