// JSON parsing for the request plane (and the offline tools).
//
// Historically the library only ever *wrote* JSON (src/obs/json.h) and
// the tools carried a private parser (tools/mini_json.h). The resident
// service (src/service) moves parsing into the library: request bodies
// arrive as JSON from untrusted clients, so the parser is promoted here
// with the defenses and diagnostics the one-shot tools never needed:
//
//   - errors are anchored at line:column like the schema parser
//     ("line 3:17: expected ':'"), not a byte offset;
//   - a recursion-depth cap, so a hostile deeply-nested body cannot
//     overflow the serving thread's stack;
//   - required-field accessors that *report* a missing or mistyped
//     field by name instead of silently defaulting it — the input-side
//     mirror of the JsonNumber non-finite fix (silent defaults mask
//     malformed requests the same way fake finite values masked
//     poisoned histograms).
//
// Scope: strict enough for our own writers plus well-formed client
// requests — objects, arrays, strings with the common escapes
// (\" \\ \/ \n \r \t \b \f \u00XX), numbers via strtod, true/false/
// null. No surrogate-pair decoding (a \uD800-\uDFFF escape is carried
// through as its UTF-8 encoding of the raw code point).

#ifndef OLAPDC_IO_JSON_PARSE_H_
#define OLAPDC_IO_JSON_PARSE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace olapdc {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Insertion-ordered so reports list fields the way the writer
  /// emitted them.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// First member named `key`, or null when absent (callers that treat
  /// absence as an error use Require* below instead).
  const JsonValue* Find(std::string_view key) const;

  /// Required-field accessors: kInvalidArgument naming the field when
  /// it is absent or has the wrong type — never a silent default.
  Result<const JsonValue*> Require(std::string_view key) const;
  Result<std::string> RequireString(std::string_view key) const;
  Result<double> RequireNumber(std::string_view key) const;
  Result<int64_t> RequireInt(std::string_view key) const;
  Result<const JsonValue*> RequireArray(std::string_view key) const;

  /// Optional-field accessors: the default when the field is absent,
  /// but a *present* field of the wrong type (or, for ints, a
  /// non-integral number) is still an error naming the field — a typo'd
  /// value must not silently become the default.
  Result<int64_t> OptionalInt(std::string_view key,
                              int64_t default_value) const;
  Result<std::string> OptionalString(std::string_view key,
                                     std::string default_value) const;
  Result<bool> OptionalBool(std::string_view key, bool default_value) const;
};

struct JsonParseOptions {
  /// Maximum nesting depth of arrays/objects; exceeding it is a parse
  /// error, not a stack overflow.
  int max_depth = 64;
};

/// Parses `text` into `*out`. On failure returns false with a
/// "line L:C: message" diagnostic in `*error` (when non-null), both
/// 1-based, matching the schema/instance parsers' convention.
bool ParseJsonText(std::string_view text, JsonValue* out,
                   std::string* error = nullptr,
                   const JsonParseOptions& options = {});

/// Status-typed wrapper: kParseError carrying the line:column message.
Result<JsonValue> ParseJson(std::string_view text,
                            const JsonParseOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_IO_JSON_PARSE_H_
