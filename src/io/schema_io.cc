#include "io/schema_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/memory_budget.h"
#include "constraint/parser.h"
#include "constraint/printer.h"
#include "io/parse_observer.h"

namespace olapdc {

namespace {

/// Inventory registration for the chaos campaign's site sweep (the
/// probe itself sits at the top of ParseSchemaTextImpl).
[[maybe_unused]] const bool kParseSite = RegisterFaultSite("schema_io.parse");

struct Line {
  std::string keyword;
  std::string rest;
  int number;
  /// 1-based column of the keyword in the raw line.
  int column = 1;
  /// 1-based column where `rest` starts (for relocating sub-parser
  /// offsets); equals `column` when the line has no rest.
  int rest_column = 1;
};

/// Splits `text` into (keyword, rest-of-line) pairs, dropping comments
/// and blank lines.
std::vector<Line> SplitLines(std::string_view text) {
  std::vector<Line> lines;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    size_t start = raw.find_first_not_of(" \t\r");
    if (start == std::string::npos || raw[start] == '#') continue;
    size_t space = raw.find_first_of(" \t", start);
    Line line;
    line.number = number;
    line.column = static_cast<int>(start) + 1;
    line.rest_column = line.column;
    if (space == std::string::npos) {
      line.keyword = raw.substr(start);
    } else {
      line.keyword = raw.substr(start, space - start);
      size_t rest_start = raw.find_first_not_of(" \t", space);
      if (rest_start != std::string::npos) {
        size_t rest_end = raw.find_last_not_of(" \t\r");
        line.rest = raw.substr(rest_start, rest_end - rest_start + 1);
        line.rest_column = static_cast<int>(rest_start) + 1;
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

/// Error anchored at line:column (both 1-based).
Status Err(const Line& line, int column, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line.number) + ":" +
                            std::to_string(column) + ": " + message);
}

Status Err(const Line& line, const std::string& message) {
  return Err(line, line.column, message);
}

/// Rewrites a constraint-parser error ("... at offset K", K 0-based in
/// the expression text) into a line:column position in the source file.
Status RelocateParserError(const Line& line, const Status& status) {
  const std::string& message = status.message();
  const std::string marker = " at offset ";
  size_t pos = message.rfind(marker);
  if (pos != std::string::npos) {
    char* end = nullptr;
    const char* digits = message.c_str() + pos + marker.size();
    long offset = std::strtol(digits, &end, 10);
    if (end != digits && *end == '\0' && offset >= 0) {
      return Err(line, line.rest_column + static_cast<int>(offset),
                 message.substr(0, pos));
    }
  }
  return Err(line, line.rest_column, message);
}

Result<DimensionSchema> ParseSchemaTextImpl(std::string_view text,
                                            const Budget* budget) {
  OLAPDC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail("schema_io.parse"));
  // The parse materializes roughly two copies of the input (the line
  // split plus the builders); charge them before splitting so an
  // oversized request is refused before any allocation.
  MemoryReservation mem(budget != nullptr ? budget->memory() : nullptr);
  OLAPDC_RETURN_NOT_OK(
      mem.Reserve(2 * static_cast<uint64_t>(text.size()) + 256,
                  "schema_io.text"));
  BudgetChecker budget_checker(budget, BudgetChecker::kDefaultStride,
                               "schema_io.parse");
  const std::vector<Line> lines = SplitLines(text);

  // Pass 1: hierarchy.
  HierarchySchemaBuilder builder;
  for (const Line& line : lines) {
    OLAPDC_RETURN_NOT_OK(budget_checker.Check());
    if (line.keyword == "category") {
      if (line.rest.empty()) return Err(line, "category needs a name");
      builder.AddCategory(line.rest);
    } else if (line.keyword == "edge") {
      std::istringstream words(line.rest);
      std::string child, parent, extra;
      words >> child >> parent;
      if (child.empty() || parent.empty() || (words >> extra)) {
        return Err(line, "edge needs exactly two categories");
      }
      builder.AddEdge(child, parent);
    } else if (line.keyword != "constraint") {
      return Err(line, "unknown keyword '" + line.keyword + "'");
    }
  }
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr hierarchy,
                          builder.BuildShared());

  // Pass 2: constraints.
  std::vector<DimensionConstraint> constraints;
  for (const Line& line : lines) {
    OLAPDC_RETURN_NOT_OK(budget_checker.Check());
    if (line.keyword != "constraint") continue;
    if (line.rest.empty()) return Err(line, "constraint needs an expression");

    // A leading parenthesized token may be a label — but an expression
    // can also start with '('. Try the label interpretation first and
    // fall back to parsing the whole line as an expression.
    std::string label;
    std::string body = line.rest;
    if (body[0] == '(') {
      size_t close = body.find(')');
      if (close != std::string::npos) {
        std::string candidate_label = body.substr(0, close + 1);
        size_t body_start = body.find_first_not_of(" \t", close + 1);
        std::string candidate_body =
            body_start == std::string::npos ? "" : body.substr(body_start);
        if (!candidate_body.empty() &&
            candidate_label.find_first_of(" \t") == std::string::npos) {
          Result<DimensionConstraint> labeled =
              ParseConstraint(*hierarchy, candidate_body, candidate_label);
          if (labeled.ok()) {
            constraints.push_back(std::move(labeled).ValueOrDie());
            continue;
          }
        }
      }
    }
    Result<DimensionConstraint> parsed =
        ParseConstraint(*hierarchy, body, label);
    if (!parsed.ok()) {
      return RelocateParserError(line, parsed.status());
    }
    constraints.push_back(std::move(parsed).ValueOrDie());
  }
  return DimensionSchema(std::move(hierarchy), std::move(constraints));
}

}  // namespace

Result<DimensionSchema> ParseSchemaText(std::string_view text,
                                        const Budget* budget) {
  io_internal::ParseObserver observer("io.parse_schema", "olapdc.io.schema");
  Result<DimensionSchema> result = ParseSchemaTextImpl(text, budget);
  observer.Finish(result.status());
  return result;
}

std::string SerializeSchema(const DimensionSchema& ds) {
  const HierarchySchema& schema = ds.hierarchy();
  std::string out = "# olapdc dimension schema\n";
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    if (c != schema.all()) out += "category " + schema.CategoryName(c) + "\n";
  }
  for (const auto& [u, v] : schema.graph().Edges()) {
    out += "edge " + schema.CategoryName(u) + " " + schema.CategoryName(v) +
           "\n";
  }
  for (const DimensionConstraint& c : ds.constraints()) {
    out += "constraint ";
    if (!c.label.empty()) {
      // Labels are serialized parenthesized so the parser can tell them
      // apart from the expression.
      if (c.label.front() == '(' && c.label.back() == ')') {
        out += c.label + " ";
      } else {
        out += "(" + c.label + ") ";
      }
    }
    out += ExprToString(schema, c.expr) + "\n";
  }
  return out;
}

Result<DimensionSchema> LoadSchemaFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open schema file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseSchemaText(buffer.str());
}

Status SaveSchemaFile(const DimensionSchema& ds, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot write schema file '" + path + "'");
  }
  file << SerializeSchema(ds);
  return file ? Status::OK()
              : Status::InvalidArgument("write failed for '" + path + "'");
}

}  // namespace olapdc
