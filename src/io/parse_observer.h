// ParseObserver: shared instrumentation for the I/O boundary parsers.
// Each ParseSchemaText / ParseInstanceText call is one trace span plus
// three metrics — `olapdc.io.<kind>.parses`, `.parse_errors`, and the
// `.parse_latency_us` histogram — so malformed-input storms and parse
// latency regressions show up in --metrics-json like any other
// subsystem. Internal to `src/io`.

#ifndef OLAPDC_IO_PARSE_OBSERVER_H_
#define OLAPDC_IO_PARSE_OBSERVER_H_

#include <chrono>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace olapdc {
namespace io_internal {

class ParseObserver {
 public:
  /// `prefix` is the metric-family prefix, e.g. "olapdc.io.schema".
  ParseObserver(const char* span_name, const char* prefix)
      : span_(span_name),
        prefix_(prefix),
        observed_(obs::MetricsEnabled() || span_.active()) {
    if (observed_) start_ = std::chrono::steady_clock::now();
  }

  /// Call exactly once with the parse outcome before returning it.
  void Finish(const Status& status) {
    if (!observed_) return;
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count();
    obs::Count(std::string(prefix_) + ".parses");
    obs::Count(std::string(prefix_) + ".parse_errors", status.ok() ? 0 : 1);
    obs::LatencyUs(std::string(prefix_) + ".parse_latency_us", elapsed_us);
    if (span_.active() && !status.ok()) {
      span_.AddStat("error", status.ToString());
    }
  }

 private:
  obs::ObsSpan span_;
  const char* prefix_;
  bool observed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace io_internal
}  // namespace olapdc

#endif  // OLAPDC_IO_PARSE_OBSERVER_H_
