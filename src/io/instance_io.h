// Text serialization of dimension instances, relative to a hierarchy
// schema. Line-based:
//
//   # comment
//   member <key> <category> [<name or 'quoted name'>]
//   edge <child-key> <parent-key>
//
// The Name attribute defaults to the key. Keys and categories are
// whitespace-free tokens; names may be single-quoted to contain spaces.

#ifndef OLAPDC_IO_INSTANCE_IO_H_
#define OLAPDC_IO_INSTANCE_IO_H_

#include <string>
#include <string_view>

#include "common/budget.h"
#include "common/result.h"
#include "dim/dimension_instance.h"

namespace olapdc {

/// Parses the instance text format over `schema`. Build()'s full C1-C7
/// validation runs unless `skip_validation`. `budget` (not owned, may
/// be null) bounds the parse: its memory budget is charged for the
/// working copy of `text` up front, and deadline/cancellation are
/// probed per line.
Result<DimensionInstance> ParseInstanceText(HierarchySchemaPtr schema,
                                            std::string_view text,
                                            bool skip_validation = false,
                                            const Budget* budget = nullptr);

/// Renders d in the instance text format (members grouped by category;
/// the auto-created `all` member is included).
std::string SerializeInstance(const DimensionInstance& d);

/// File wrappers.
Result<DimensionInstance> LoadInstanceFile(HierarchySchemaPtr schema,
                                           const std::string& path);
Status SaveInstanceFile(const DimensionInstance& d, const std::string& path);

}  // namespace olapdc

#endif  // OLAPDC_IO_INSTANCE_IO_H_
