// Text serialization of dimension schemas. The format is line-based:
//
//   # comment
//   category Store                  (optional; edges imply categories)
//   edge Store City
//   constraint (a) Store/City
//   constraint City = 'Washington' <-> City/Country
//
// A `constraint` line may start with a parenthesized label; the rest of
// the line is parsed with the constraint grammar of parser.h.
// Serialization round-trips: Parse(Serialize(ds)) reproduces the same
// hierarchy and constraint set.

#ifndef OLAPDC_IO_SCHEMA_IO_H_
#define OLAPDC_IO_SCHEMA_IO_H_

#include <string>
#include <string_view>

#include "common/budget.h"
#include "common/result.h"
#include "core/schema.h"

namespace olapdc {

/// Parses the schema text format. `budget` (not owned, may be null)
/// bounds the parse: its memory budget is charged for the working copy
/// of `text` up front, and deadline/cancellation are probed per line —
/// ingesting an oversized or adversarial schema degrades with a budget
/// status instead of holding a request slot indefinitely.
Result<DimensionSchema> ParseSchemaText(std::string_view text,
                                        const Budget* budget = nullptr);

/// Renders ds in the schema text format.
std::string SerializeSchema(const DimensionSchema& ds);

/// File wrappers.
Result<DimensionSchema> LoadSchemaFile(const std::string& path);
Status SaveSchemaFile(const DimensionSchema& ds, const std::string& path);

}  // namespace olapdc

#endif  // OLAPDC_IO_SCHEMA_IO_H_
