#include "io/instance_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/memory_budget.h"
#include "io/parse_observer.h"

namespace olapdc {

namespace {

/// Inventory registration for the chaos campaign's site sweep (the
/// probe itself sits at the top of ParseInstanceTextImpl).
[[maybe_unused]] const bool kParseSite =
    RegisterFaultSite("instance_io.parse");

/// A whitespace token plus its 1-based source column, so errors can
/// point at the offending token rather than just the line.
struct Token {
  std::string text;
  int column;
};

/// Error anchored at line:column (both 1-based).
Status Err(int number, int column, const std::string& message) {
  return Status::ParseError("line " + std::to_string(number) + ":" +
                            std::to_string(column) + ": " + message);
}

/// Splits a line into whitespace tokens, treating '...'-quoted spans as
/// single tokens.
Result<std::vector<Token>> Tokenize(const std::string& line, int number) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    if (line[i] == '\'') {
      size_t close = line.find('\'', i + 1);
      if (close == std::string::npos) {
        return Err(number, static_cast<int>(i) + 1, "unterminated quote");
      }
      tokens.push_back(
          Token{line.substr(i + 1, close - i - 1), static_cast<int>(i) + 1});
      i = close + 1;
    } else {
      size_t end = i;
      while (end < line.size() &&
             !std::isspace(static_cast<unsigned char>(line[end]))) {
        ++end;
      }
      tokens.push_back(Token{line.substr(i, end - i), static_cast<int>(i) + 1});
      i = end;
    }
  }
  return tokens;
}

Result<DimensionInstance> ParseInstanceTextImpl(HierarchySchemaPtr schema,
                                                std::string_view text,
                                                bool skip_validation,
                                                const Budget* budget) {
  OLAPDC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail("instance_io.parse"));
  // The parse materializes roughly two copies of the input (the stream
  // copy plus the builder's members/edges); charge them before any
  // allocation so an oversized request is refused up front.
  MemoryReservation mem(budget != nullptr ? budget->memory() : nullptr);
  OLAPDC_RETURN_NOT_OK(
      mem.Reserve(2 * static_cast<uint64_t>(text.size()) + 256,
                  "instance_io.text"));
  BudgetChecker budget_checker(budget, BudgetChecker::kDefaultStride,
                               "instance_io.parse");
  DimensionInstanceBuilder builder(std::move(schema));
  builder.set_skip_validation(skip_validation);
  std::istringstream stream{std::string(text)};
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    OLAPDC_RETURN_NOT_OK(budget_checker.Check());
    OLAPDC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(raw, number));
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0].text;
    if (keyword == "member") {
      if (tokens.size() < 3 || tokens.size() > 4) {
        return Err(number, tokens[0].column,
                   "member needs <key> <category> [<name>]");
      }
      if (tokens.size() == 4) {
        builder.AddMember(tokens[1].text, tokens[2].text, tokens[3].text);
      } else {
        builder.AddMember(tokens[1].text, tokens[2].text);
      }
    } else if (keyword == "edge") {
      if (tokens.size() != 3) {
        return Err(number, tokens[0].column, "edge needs <child> <parent>");
      }
      builder.AddChildParent(tokens[1].text, tokens[2].text);
    } else {
      return Err(number, tokens[0].column,
                 "unknown keyword '" + keyword + "'");
    }
  }
  return builder.Build();
}

}  // namespace

Result<DimensionInstance> ParseInstanceText(HierarchySchemaPtr schema,
                                            std::string_view text,
                                            bool skip_validation,
                                            const Budget* budget) {
  io_internal::ParseObserver observer("io.parse_instance",
                                      "olapdc.io.instance");
  Result<DimensionInstance> result =
      ParseInstanceTextImpl(std::move(schema), text, skip_validation, budget);
  observer.Finish(result.status());
  return result;
}

std::string SerializeInstance(const DimensionInstance& d) {
  const HierarchySchema& schema = d.hierarchy();
  std::string out = "# olapdc dimension instance\n";
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    for (MemberId m : d.MembersOf(c)) {
      const Member& member = d.member(m);
      out += "member " + member.key + " " + schema.CategoryName(c);
      if (member.name != member.key) {
        out += " '" + member.name + "'";
      }
      out += "\n";
    }
  }
  for (const auto& [x, y] : d.child_parent().Edges()) {
    out += "edge " + d.member(x).key + " " + d.member(y).key + "\n";
  }
  return out;
}

Result<DimensionInstance> LoadInstanceFile(HierarchySchemaPtr schema,
                                           const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open instance file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseInstanceText(std::move(schema), buffer.str());
}

Status SaveInstanceFile(const DimensionInstance& d, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot write instance file '" + path +
                                   "'");
  }
  file << SerializeInstance(d);
  return file ? Status::OK()
              : Status::InvalidArgument("write failed for '" + path + "'");
}

}  // namespace olapdc
