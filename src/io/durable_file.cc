#include "io/durable_file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <cstdio>

#include "common/fault_injector.h"
#include "obs/metrics.h"

namespace olapdc {

namespace {

constexpr char kMagic[] = "olapdc-durable v1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;
constexpr size_t kFrameLen = 8;  // u32 length + u32 crc

const bool kSiteWrite = RegisterFaultSite("durable.write");
const bool kSiteFsync = RegisterFaultSite("durable.fsync");
const bool kSiteRename = RegisterFaultSite("durable.rename");

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void PutU32(uint32_t value, char* out) {
  out[0] = static_cast<char>(value & 0xFF);
  out[1] = static_cast<char>((value >> 8) & 0xFF);
  out[2] = static_cast<char>((value >> 16) & 0xFF);
  out[3] = static_cast<char>((value >> 24) & 0xFF);
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24);
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("durable write failed: ") +
                              ::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Best-effort fsync of `path`'s parent directory, so the rename
/// itself is durable. Failure is ignored: some filesystems refuse
/// directory fsync, and the data fsync already happened.
void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteDurableFile(const std::string& path,
                        const std::vector<std::string>& records,
                        DurableWriteStats* stats) {
  (void)kSiteWrite;
  (void)kSiteFsync;
  (void)kSiteRename;
  if (stats != nullptr) *stats = DurableWriteStats{};
  for (const std::string& record : records) {
    if (record.size() > kMaxDurableRecordBytes) {
      return Status::InvalidArgument(
          "durable record exceeds " +
          std::to_string(kMaxDurableRecordBytes) + " bytes");
    }
  }
  const std::string tmp = path + ".tmp";
  auto fail = [&](int fd, Status status) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    if (obs::MetricsEnabled()) obs::Count("olapdc.durable.write_failures");
    return status;
  };

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return fail(-1, Status::Internal("cannot open '" + tmp +
                                     "': " + ::strerror(errno)));
  }
  uint64_t bytes = 0;
  Status status = FaultInjector::Global().MaybeFail("durable.write");
  if (status.ok()) status = WriteAll(fd, kMagic, kMagicLen);
  if (!status.ok()) return fail(fd, std::move(status));
  bytes += kMagicLen;
  for (const std::string& record : records) {
    char frame[kFrameLen];
    PutU32(static_cast<uint32_t>(record.size()), frame);
    PutU32(Crc32(record), frame + 4);
    status = FaultInjector::Global().MaybeFail("durable.write");
    if (status.ok()) status = WriteAll(fd, frame, kFrameLen);
    if (status.ok()) status = WriteAll(fd, record.data(), record.size());
    if (!status.ok()) return fail(fd, std::move(status));
    bytes += kFrameLen + record.size();
  }
  status = FaultInjector::Global().MaybeFail("durable.fsync");
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal(std::string("fsync failed: ") +
                              ::strerror(errno));
  }
  if (!status.ok()) return fail(fd, std::move(status));
  if (::close(fd) != 0) {
    return fail(-1, Status::Internal(std::string("close failed: ") +
                                     ::strerror(errno)));
  }
  status = FaultInjector::Global().MaybeFail("durable.rename");
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::Internal(std::string("rename failed: ") +
                              ::strerror(errno));
  }
  if (!status.ok()) return fail(-1, std::move(status));
  FsyncParentDir(path);
  if (stats != nullptr) {
    stats->records = records.size();
    stats->bytes = bytes;
  }
  if (obs::MetricsEnabled()) {
    obs::Count("olapdc.durable.writes");
    obs::Count("olapdc.durable.bytes", bytes);
  }
  return Status::OK();
}

Result<DurableReadResult> ReadDurableFile(const std::string& path,
                                          bool truncate_torn_tail) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no durable file at '" + path + "'");
    }
    return Status::Internal("cannot open '" + path +
                            "': " + ::strerror(errno));
  }
  std::string contents;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::Internal(
          std::string("read failed: ") + ::strerror(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);

  DurableReadResult result;
  result.bytes_total = contents.size();
  if (contents.size() < kMagicLen ||
      contents.compare(0, kMagicLen, kMagic) != 0) {
    return Status::ParseError("'" + path +
                              "' is not a durable file (bad magic)");
  }
  size_t offset = kMagicLen;
  size_t valid_end = offset;
  while (offset < contents.size()) {
    if (contents.size() - offset < kFrameLen) break;  // torn frame
    const uint32_t length = GetU32(contents.data() + offset);
    const uint32_t expected_crc = GetU32(contents.data() + offset + 4);
    // An implausible length word is indistinguishable from a torn or
    // flipped frame; stop salvaging here.
    if (length > kMaxDurableRecordBytes) break;
    if (contents.size() - offset - kFrameLen < length) break;  // torn payload
    const std::string_view payload(contents.data() + offset + kFrameLen,
                                   length);
    if (Crc32(payload) != expected_crc) {
      // Bit flip inside a complete frame: drop it and everything after
      // (the framing past a corrupt record cannot be trusted).
      result.crc_drops = 1;
      break;
    }
    result.records.emplace_back(payload);
    offset += kFrameLen + length;
    valid_end = offset;
  }
  result.bytes_salvaged = valid_end;
  if (valid_end < contents.size() && result.crc_drops == 0) {
    result.torn_tail_truncations = 1;
  }
  if (valid_end < contents.size() && truncate_torn_tail) {
    // Truncate back to the last valid record so later readers see a
    // clean file; best-effort (a read-only mount just re-salvages).
    if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      // Ignored: the logical recovery above already succeeded.
    }
  }
  if (obs::MetricsEnabled()) {
    obs::Count("olapdc.durable.recovered_records", result.records.size());
    if (result.torn_tail_truncations > 0) {
      obs::Count("olapdc.durable.torn_tail_truncations");
    }
    if (result.crc_drops > 0) obs::Count("olapdc.durable.crc_drops");
  }
  return result;
}

}  // namespace olapdc
