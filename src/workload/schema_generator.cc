#include "workload/schema_generator.h"

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "graph/algorithms.h"

namespace olapdc {

namespace {

std::string LevelCategoryName(int level, int index) {
  if (level == 0) return "Base";
  return "L" + std::to_string(level) + "C" + std::to_string(index);
}

}  // namespace

Result<HierarchySchemaPtr> GenerateLayeredHierarchy(
    const SchemaGenOptions& options) {
  if (options.num_levels < 1 || options.categories_per_level < 1) {
    return Status::InvalidArgument("need >= 1 level and >= 1 category");
  }
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // levels[i] = names at level i; level 0 = {Base}; implicit top = All.
  std::vector<std::vector<std::string>> levels;
  levels.push_back({"Base"});
  for (int level = 1; level <= options.num_levels; ++level) {
    std::vector<std::string> names;
    for (int i = 0; i < options.categories_per_level; ++i) {
      names.push_back(LevelCategoryName(level, i));
    }
    levels.push_back(std::move(names));
  }

  HierarchySchemaBuilder builder;
  std::vector<std::pair<std::string, std::string>> edges;
  auto add_edge = [&](const std::string& a, const std::string& b) {
    edges.emplace_back(a, b);
    builder.AddEdge(a, b);
  };

  // Spanning out-edges: every category points somewhere one level up
  // (the top level points at All).
  for (int level = 0; level <= options.num_levels; ++level) {
    for (const std::string& name : levels[level]) {
      if (level == options.num_levels) {
        add_edge(name, "All");
      } else {
        const auto& next = levels[level + 1];
        std::uniform_int_distribution<size_t> pick(0, next.size() - 1);
        add_edge(name, next[pick(rng)]);
      }
    }
  }

  // Optional extra edges across up to max_level_jump levels.
  for (int level = 0; level <= options.num_levels; ++level) {
    for (const std::string& from : levels[level]) {
      const int highest =
          std::min(options.num_levels, level + options.max_level_jump);
      for (int to_level = level + 1; to_level <= highest; ++to_level) {
        for (const std::string& to : levels[to_level]) {
          bool exists = false;
          for (const auto& [a, b] : edges) {
            exists |= (a == from && b == to);
          }
          if (!exists && coin(rng) < options.extra_edge_prob) {
            add_edge(from, to);
          }
        }
      }
    }
  }

  // Every non-bottom category should have an in-edge so Base stays the
  // unique bottom category.
  for (int level = 1; level <= options.num_levels; ++level) {
    for (const std::string& name : levels[level]) {
      bool has_in = false;
      for (const auto& [a, b] : edges) has_in |= (b == name);
      if (!has_in) {
        const auto& below = levels[level - 1];
        std::uniform_int_distribution<size_t> pick(0, below.size() - 1);
        add_edge(below[pick(rng)], name);
      }
    }
  }

  return builder.BuildShared();
}

Result<DimensionSchema> GenerateConstrainedSchema(
    const HierarchySchemaPtr& schema, const ConstraintGenOptions& options) {
  OLAPDC_CHECK(schema != nullptr);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::vector<DimensionConstraint> constraints;
  DynamicBitset into_source(schema->num_categories());

  // Into constraints: sampled per edge, skipping shortcut edges (an
  // into constraint on a shortcut edge conflicts with condition C5
  // whenever the longer path is also forced, making whole schemas
  // trivially unsatisfiable — real designs put into constraints on the
  // primary rollup edges).
  for (const auto& [u, v] : schema->graph().Edges()) {
    if (v == schema->all() && schema->graph().OutDegree(u) == 1) {
      continue;  // forced anyway
    }
    if (HasSimplePathThroughThirdNode(schema->graph(), u, v)) continue;
    if (coin(rng) < options.into_fraction) {
      OLAPDC_ASSIGN_OR_RETURN(
          DimensionConstraint c,
          MakeConstraint(*schema, MakePathAtom({u, v}), "into"));
      constraints.push_back(std::move(c));
      into_source.set(u);
    }
  }

  // Exclusive-choice constraints over categories with several parents
  // none of which is already forced.
  std::vector<CategoryId> choice_candidates;
  for (CategoryId c = 0; c < schema->num_categories(); ++c) {
    if (c != schema->all() && schema->graph().OutDegree(c) >= 2 &&
        !into_source.test(c)) {
      choice_candidates.push_back(c);
    }
  }
  for (int i = 0;
       i < options.num_choice_constraints && !choice_candidates.empty();
       ++i) {
    std::uniform_int_distribution<size_t> pick(0,
                                               choice_candidates.size() - 1);
    CategoryId c = choice_candidates[pick(rng)];
    std::vector<ExprPtr> atoms;
    for (CategoryId p : schema->graph().OutNeighbors(c)) {
      atoms.push_back(MakePathAtom({c, p}));
    }
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint constraint,
        MakeConstraint(*schema, MakeExactlyOne(std::move(atoms)), "choice"));
    constraints.push_back(std::move(constraint));
  }

  // Equality-conditioned structure: (c.t = k -> c_p). Vacuously
  // satisfiable via nk, so these never make the schema unsatisfiable on
  // their own but do enlarge the c-assignment space (the N_K knob).
  std::vector<CategoryId> eq_candidates;
  for (CategoryId c = 0; c < schema->num_categories(); ++c) {
    if (c != schema->all() && schema->graph().OutDegree(c) >= 2) {
      eq_candidates.push_back(c);
    }
  }
  for (int i = 0; i < options.num_equality_constraints && !eq_candidates.empty();
       ++i) {
    std::uniform_int_distribution<size_t> pick(0, eq_candidates.size() - 1);
    CategoryId c = eq_candidates[pick(rng)];
    const auto& successors = schema->graph().OutNeighbors(c);
    std::uniform_int_distribution<size_t> pick_succ(0, successors.size() - 1);
    CategoryId p = successors[pick_succ(rng)];
    // Target: some category strictly above c (here: the successor's
    // first successor if any, else the successor itself).
    CategoryId t = p;
    if (schema->graph().OutDegree(p) > 0 &&
        schema->graph().OutNeighbors(p)[0] != schema->all()) {
      t = schema->graph().OutNeighbors(p)[0];
    }
    std::uniform_int_distribution<int> pick_const(0, options.num_constants - 1);
    std::string constant = "k" + schema->CategoryName(t) + "_" +
                           std::to_string(pick_const(rng));
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint constraint,
        MakeConstraint(*schema,
                       MakeImplies(MakeEqualityAtom(c, t, constant),
                                   MakePathAtom({c, p})),
                       "eq"));
    constraints.push_back(std::move(constraint));
  }

  return DimensionSchema(schema, std::move(constraints));
}

Result<DimensionSchema> GenerateMultiComponentSchema(
    const MultiComponentGenOptions& options) {
  if (options.num_components < 2 || options.levels_per_component < 1 ||
      options.categories_per_level < 1) {
    return Status::InvalidArgument(
        "need >= 2 components and >= 1 level/category per component");
  }
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  HierarchySchemaBuilder builder;
  std::vector<std::pair<std::string, std::string>> edges;
  auto add_edge = [&](const std::string& a, const std::string& b) {
    edges.emplace_back(a, b);
    builder.AddEdge(a, b);
  };
  auto has_edge = [&](const std::string& a, const std::string& b) {
    for (const auto& [x, y] : edges) {
      if (x == a && y == b) return true;
    }
    return false;
  };

  // comp_edges[k]: the comp-internal edges eligible for into
  // constraints; hubs[k]: the component's wide entry category.
  std::vector<std::vector<std::pair<std::string, std::string>>> comp_edges(
      options.num_components);
  std::vector<std::string> hubs;

  for (int k = 0; k < options.num_components; ++k) {
    const std::string prefix = "P" + std::to_string(k);
    const std::string hub = prefix + "Hub";
    hubs.push_back(hub);
    add_edge("Base", hub);

    std::vector<std::vector<std::string>> levels;
    levels.push_back({hub});
    for (int level = 1; level <= options.levels_per_component; ++level) {
      std::vector<std::string> names;
      for (int i = 0; i < options.categories_per_level; ++i) {
        names.push_back(prefix + "L" + std::to_string(level) + "C" +
                        std::to_string(i));
      }
      levels.push_back(std::move(names));
    }

    // The hub fans out to the whole first level: the declaration-order
    // branching baseline meets this wide category first.
    for (const std::string& c : levels[1]) {
      add_edge(hub, c);
      comp_edges[k].emplace_back(hub, c);
    }
    // Spanning edges upward, plus optional extras, strictly inside the
    // component.
    for (int level = 1; level < options.levels_per_component; ++level) {
      const auto& next = levels[level + 1];
      std::uniform_int_distribution<size_t> pick(0, next.size() - 1);
      for (const std::string& from : levels[level]) {
        const std::string& to = next[pick(rng)];
        add_edge(from, to);
        comp_edges[k].emplace_back(from, to);
        for (const std::string& extra : next) {
          if (!has_edge(from, extra) && coin(rng) < options.extra_edge_prob) {
            add_edge(from, extra);
            comp_edges[k].emplace_back(from, extra);
          }
        }
      }
      // Every next-level category needs an in-edge to stay reachable.
      for (const std::string& to : next) {
        bool has_in = false;
        for (const auto& [a, b] : edges) has_in |= (b == to);
        if (!has_in) {
          std::uniform_int_distribution<size_t> pick_from(
              0, levels[level].size() - 1);
          const std::string& from = levels[level][pick_from(rng)];
          add_edge(from, to);
          comp_edges[k].emplace_back(from, to);
        }
      }
    }
    // Top level rolls up to All. No Base -> All edge exists, so the
    // split stays eligible.
    for (const std::string& top : levels.back()) {
      add_edge(top, "All");
    }
  }

  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr schema, builder.BuildShared());

  std::vector<DimensionConstraint> constraints;
  DynamicBitset into_source(schema->num_categories());
  for (int k = 0; k < options.num_components; ++k) {
    // Into constraints over comp-internal edges (never Base's edges:
    // keeping Base unconstrained keeps every component absent-valid).
    for (const auto& [a, b] : comp_edges[k]) {
      const CategoryId u = schema->FindCategory(a);
      const CategoryId v = schema->FindCategory(b);
      if (HasSimplePathThroughThirdNode(schema->graph(), u, v)) continue;
      if (coin(rng) < options.into_fraction) {
        OLAPDC_ASSIGN_OR_RETURN(
            DimensionConstraint c,
            MakeConstraint(*schema, MakePathAtom({u, v}), "into"));
        constraints.push_back(std::move(c));
        into_source.set(u);
      }
    }
    // Exclusive choice over wide comp-internal categories, hub first —
    // this is the constraint that couples the component's categories
    // into one split class.
    std::vector<CategoryId> candidates;
    for (const auto& [a, b] : comp_edges[k]) {
      const CategoryId u = schema->FindCategory(a);
      if (schema->graph().OutDegree(u) >= 2 && !into_source.test(u) &&
          (candidates.empty() || candidates.back() != u)) {
        candidates.push_back(u);
      }
    }
    for (int i = 0; i < options.num_choice_constraints && !candidates.empty();
         ++i) {
      const CategoryId c = candidates[i % candidates.size()];
      std::vector<ExprPtr> atoms;
      for (CategoryId p : schema->graph().OutNeighbors(c)) {
        atoms.push_back(MakePathAtom({c, p}));
      }
      OLAPDC_ASSIGN_OR_RETURN(
          DimensionConstraint constraint,
          MakeConstraint(*schema, MakeExactlyOne(std::move(atoms)), "choice"));
      constraints.push_back(std::move(constraint));
    }
  }

  return DimensionSchema(schema, std::move(constraints));
}

}  // namespace olapdc
