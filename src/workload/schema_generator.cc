#include "workload/schema_generator.h"

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "graph/algorithms.h"

namespace olapdc {

namespace {

std::string LevelCategoryName(int level, int index) {
  if (level == 0) return "Base";
  return "L" + std::to_string(level) + "C" + std::to_string(index);
}

}  // namespace

Result<HierarchySchemaPtr> GenerateLayeredHierarchy(
    const SchemaGenOptions& options) {
  if (options.num_levels < 1 || options.categories_per_level < 1) {
    return Status::InvalidArgument("need >= 1 level and >= 1 category");
  }
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // levels[i] = names at level i; level 0 = {Base}; implicit top = All.
  std::vector<std::vector<std::string>> levels;
  levels.push_back({"Base"});
  for (int level = 1; level <= options.num_levels; ++level) {
    std::vector<std::string> names;
    for (int i = 0; i < options.categories_per_level; ++i) {
      names.push_back(LevelCategoryName(level, i));
    }
    levels.push_back(std::move(names));
  }

  HierarchySchemaBuilder builder;
  std::vector<std::pair<std::string, std::string>> edges;
  auto add_edge = [&](const std::string& a, const std::string& b) {
    edges.emplace_back(a, b);
    builder.AddEdge(a, b);
  };

  // Spanning out-edges: every category points somewhere one level up
  // (the top level points at All).
  for (int level = 0; level <= options.num_levels; ++level) {
    for (const std::string& name : levels[level]) {
      if (level == options.num_levels) {
        add_edge(name, "All");
      } else {
        const auto& next = levels[level + 1];
        std::uniform_int_distribution<size_t> pick(0, next.size() - 1);
        add_edge(name, next[pick(rng)]);
      }
    }
  }

  // Optional extra edges across up to max_level_jump levels.
  for (int level = 0; level <= options.num_levels; ++level) {
    for (const std::string& from : levels[level]) {
      const int highest =
          std::min(options.num_levels, level + options.max_level_jump);
      for (int to_level = level + 1; to_level <= highest; ++to_level) {
        for (const std::string& to : levels[to_level]) {
          bool exists = false;
          for (const auto& [a, b] : edges) {
            exists |= (a == from && b == to);
          }
          if (!exists && coin(rng) < options.extra_edge_prob) {
            add_edge(from, to);
          }
        }
      }
    }
  }

  // Every non-bottom category should have an in-edge so Base stays the
  // unique bottom category.
  for (int level = 1; level <= options.num_levels; ++level) {
    for (const std::string& name : levels[level]) {
      bool has_in = false;
      for (const auto& [a, b] : edges) has_in |= (b == name);
      if (!has_in) {
        const auto& below = levels[level - 1];
        std::uniform_int_distribution<size_t> pick(0, below.size() - 1);
        add_edge(below[pick(rng)], name);
      }
    }
  }

  return builder.BuildShared();
}

Result<DimensionSchema> GenerateConstrainedSchema(
    const HierarchySchemaPtr& schema, const ConstraintGenOptions& options) {
  OLAPDC_CHECK(schema != nullptr);
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  std::vector<DimensionConstraint> constraints;
  DynamicBitset into_source(schema->num_categories());

  // Into constraints: sampled per edge, skipping shortcut edges (an
  // into constraint on a shortcut edge conflicts with condition C5
  // whenever the longer path is also forced, making whole schemas
  // trivially unsatisfiable — real designs put into constraints on the
  // primary rollup edges).
  for (const auto& [u, v] : schema->graph().Edges()) {
    if (v == schema->all() && schema->graph().OutDegree(u) == 1) {
      continue;  // forced anyway
    }
    if (HasSimplePathThroughThirdNode(schema->graph(), u, v)) continue;
    if (coin(rng) < options.into_fraction) {
      OLAPDC_ASSIGN_OR_RETURN(
          DimensionConstraint c,
          MakeConstraint(*schema, MakePathAtom({u, v}), "into"));
      constraints.push_back(std::move(c));
      into_source.set(u);
    }
  }

  // Exclusive-choice constraints over categories with several parents
  // none of which is already forced.
  std::vector<CategoryId> choice_candidates;
  for (CategoryId c = 0; c < schema->num_categories(); ++c) {
    if (c != schema->all() && schema->graph().OutDegree(c) >= 2 &&
        !into_source.test(c)) {
      choice_candidates.push_back(c);
    }
  }
  for (int i = 0;
       i < options.num_choice_constraints && !choice_candidates.empty();
       ++i) {
    std::uniform_int_distribution<size_t> pick(0,
                                               choice_candidates.size() - 1);
    CategoryId c = choice_candidates[pick(rng)];
    std::vector<ExprPtr> atoms;
    for (CategoryId p : schema->graph().OutNeighbors(c)) {
      atoms.push_back(MakePathAtom({c, p}));
    }
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint constraint,
        MakeConstraint(*schema, MakeExactlyOne(std::move(atoms)), "choice"));
    constraints.push_back(std::move(constraint));
  }

  // Equality-conditioned structure: (c.t = k -> c_p). Vacuously
  // satisfiable via nk, so these never make the schema unsatisfiable on
  // their own but do enlarge the c-assignment space (the N_K knob).
  std::vector<CategoryId> eq_candidates;
  for (CategoryId c = 0; c < schema->num_categories(); ++c) {
    if (c != schema->all() && schema->graph().OutDegree(c) >= 2) {
      eq_candidates.push_back(c);
    }
  }
  for (int i = 0; i < options.num_equality_constraints && !eq_candidates.empty();
       ++i) {
    std::uniform_int_distribution<size_t> pick(0, eq_candidates.size() - 1);
    CategoryId c = eq_candidates[pick(rng)];
    const auto& successors = schema->graph().OutNeighbors(c);
    std::uniform_int_distribution<size_t> pick_succ(0, successors.size() - 1);
    CategoryId p = successors[pick_succ(rng)];
    // Target: some category strictly above c (here: the successor's
    // first successor if any, else the successor itself).
    CategoryId t = p;
    if (schema->graph().OutDegree(p) > 0 &&
        schema->graph().OutNeighbors(p)[0] != schema->all()) {
      t = schema->graph().OutNeighbors(p)[0];
    }
    std::uniform_int_distribution<int> pick_const(0, options.num_constants - 1);
    std::string constant = "k" + schema->CategoryName(t) + "_" +
                           std::to_string(pick_const(rng));
    OLAPDC_ASSIGN_OR_RETURN(
        DimensionConstraint constraint,
        MakeConstraint(*schema,
                       MakeImplies(MakeEqualityAtom(c, t, constant),
                                   MakePathAtom({c, p})),
                       "eq"));
    constraints.push_back(std::move(constraint));
  }

  return DimensionSchema(schema, std::move(constraints));
}

}  // namespace olapdc
