#include "workload/realistic.h"

#include <utility>
#include <vector>

#include "constraint/parser.h"

namespace olapdc {

namespace {

Result<DimensionSchema> BuildSchema(
    HierarchySchemaBuilder& builder,
    const std::vector<std::pair<const char*, const char*>>& texts) {
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr schema, builder.BuildShared());
  std::vector<DimensionConstraint> constraints;
  constraints.reserve(texts.size());
  for (const auto& [label, text] : texts) {
    OLAPDC_ASSIGN_OR_RETURN(DimensionConstraint c,
                            ParseConstraint(*schema, text, label));
    constraints.push_back(std::move(c));
  }
  return DimensionSchema(std::move(schema), std::move(constraints));
}

}  // namespace

Result<DimensionSchema> HealthcareSchema() {
  HierarchySchemaBuilder builder;
  builder.AddEdge("Patient", "Diagnosis")
      .AddEdge("Diagnosis", "Family")
      .AddEdge("Diagnosis", "Group")  // the exceptional direct edge
      .AddEdge("Family", "Group")
      .AddEdge("Group", "All");
  return BuildSchema(
      builder,
      {
          {"(h1)", "Patient/Diagnosis"},
          // A diagnosis sits under exactly one of Family / Group
          // directly (never both: that would be a shortcut anyway).
          {"(h2)", "one(Diagnosis/Family, Diagnosis/Group)"},
          {"(h3)", "Family/Group"},
          // Low-level ("L3") diagnoses always have a family.
          {"(h4)", "Diagnosis = 'L3' -> Diagnosis/Family"},
      });
}

Result<DimensionSchema> ProductSchema() {
  HierarchySchemaBuilder builder;
  builder.AddEdge("Product", "Brand")
      .AddEdge("Product", "Category")
      .AddEdge("Brand", "Company")
      .AddEdge("Company", "All")
      .AddEdge("Category", "Department")
      .AddEdge("Department", "All");
  return BuildSchema(
      builder,
      {
          {"(p1)", "Product/Category"},
          {"(p2)", "Category/Department"},
          {"(p3)", "Brand/Company"},
          // Own-label products skip Brand; the grocery department is
          // entirely own-label.
          {"(p4)",
           "Product.Department = 'Grocery' -> !Product/Brand"},
      });
}

Result<DimensionSchema> TimeSchema() {
  HierarchySchemaBuilder builder;
  builder.AddEdge("Day", "Month")
      .AddEdge("Month", "Quarter")
      .AddEdge("Quarter", "Year")
      .AddEdge("Year", "All")
      .AddEdge("Day", "Week")
      .AddEdge("Week", "All");
  return BuildSchema(builder, {
                                  {"(t1)", "Day/Month"},
                                  {"(t2)", "Day/Week"},
                                  {"(t3)", "Month/Quarter"},
                                  {"(t4)", "Quarter/Year"},
                              });
}

}  // namespace olapdc
