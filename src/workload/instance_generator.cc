#include "workload/instance_generator.h"

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/dimsat.h"

namespace olapdc {

namespace {

/// Longest-path-to-All depth of every category within a frozen
/// structure (g is acyclic; absent categories get -1).
std::vector<int> StructureDepths(const Subhierarchy& g, CategoryId all) {
  std::vector<int> depth(g.num_categories(), -1);
  // Repeated relaxation (structures are tiny).
  depth[all] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    g.categories().ForEach([&](int c) {
      int best = -1;
      g.Out(c).ForEach([&](int p) {
        if (depth[p] >= 0) best = std::max(best, depth[p] + 1);
      });
      if (c == all) best = 0;
      if (best > depth[c]) {
        depth[c] = best;
        changed = true;
      }
    });
  }
  return depth;
}

int64_t IntPow(int64_t base, int exponent) {
  int64_t out = 1;
  for (int i = 0; i < exponent; ++i) out *= base;
  return out;
}

}  // namespace

Result<DimensionInstance> GenerateInstanceFromFrozen(
    const DimensionSchema& ds, const InstanceGenOptions& options) {
  const HierarchySchema& schema = ds.hierarchy();
  DimensionInstanceBuilder builder(ds.hierarchy_ptr());
  builder.set_auto_all(true).set_auto_link_to_all(false);
  builder.set_skip_validation(options.skip_validation);

  bool any_member = false;
  for (CategoryId bottom : schema.bottom_categories()) {
    if (bottom == schema.all()) continue;
    DimsatOptions dimsat_options;
    dimsat_options.enumerate_all = true;
    dimsat_options.max_frozen = options.max_structures;
    DimsatResult frozen = Dimsat(ds, bottom, dimsat_options);
    OLAPDC_RETURN_NOT_OK(frozen.status);

    for (size_t s = 0; s < frozen.frozen.size(); ++s) {
      const FrozenDimension& f = frozen.frozen[s];
      std::vector<int> depth = StructureDepths(f.g, schema.all());
      for (int copy = 0; copy < options.copies; ++copy) {
        const std::string prefix = "b" + std::to_string(bottom) + "s" +
                                   std::to_string(s) + "c" +
                                   std::to_string(copy) + ":";
        auto member_key = [&](CategoryId c, int64_t i) {
          return prefix + schema.CategoryName(c) + "#" + std::to_string(i);
        };
        auto capped_depth = [&](CategoryId c) {
          return std::min(depth[c], options.depth_cap);
        };

        // Members.
        f.g.categories().ForEach([&](int c) {
          if (c == schema.all()) return;
          const int64_t count = IntPow(options.branching, capped_depth(c));
          const bool has_constant =
              c < static_cast<int>(f.names.size()) && f.names[c].has_value();
          for (int64_t i = 0; i < count; ++i) {
            const std::string key = member_key(c, i);
            builder.AddMember(key, schema.CategoryName(c),
                              has_constant ? *f.names[c] : key);
            any_member = true;
          }
        });

        // Edges, divisibility-consistent.
        for (const auto& [c, p] : f.g.Edges()) {
          const int64_t count = IntPow(options.branching, capped_depth(c));
          const int64_t ratio =
              IntPow(options.branching, capped_depth(c) - capped_depth(p));
          for (int64_t i = 0; i < count; ++i) {
            if (p == schema.all()) {
              builder.AddChildParent(member_key(c, i), "all");
            } else {
              builder.AddChildParent(member_key(c, i),
                                     member_key(p, i / ratio));
            }
          }
        }
      }
    }
  }
  if (!any_member) {
    return Status::InvalidArgument(
        "no bottom category of the schema is satisfiable; instance would "
        "be empty");
  }
  return builder.Build();
}

FactTable GenerateFacts(const DimensionInstance& d,
                        const FactGenOptions& options) {
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> measure(1, options.max_measure);
  FactTable facts;
  for (CategoryId bottom : d.hierarchy().bottom_categories()) {
    for (MemberId m : d.MembersOf(bottom)) {
      for (int i = 0; i < options.facts_per_base_member; ++i) {
        facts.Add(m, static_cast<double>(measure(rng)));
      }
    }
  }
  return facts;
}

}  // namespace olapdc
