// Hand-written "practical situation" schemas for the E12 suite (the
// paper's Section 6 conjecture that DIMSAT answers implication queries
// "of the order of a few seconds" in practice). Three domains:
//
//  - retail location: the paper's own locationSch (core/location_example.h);
//  - healthcare diagnoses: the Pedersen & Jensen motivating scenario —
//    low-level diagnoses grouped into families, with some diagnoses
//    attached directly to diagnosis groups;
//  - product catalog: products with optional brands, heterogeneous
//    across departments.

#ifndef OLAPDC_WORKLOAD_REALISTIC_H_
#define OLAPDC_WORKLOAD_REALISTIC_H_

#include "common/result.h"
#include "core/schema.h"

namespace olapdc {

/// Diagnosis dimension: Patient -> Diagnosis -> {Family | Group},
/// Family -> Group -> All. Heterogeneity: a diagnosis belongs to
/// exactly one of Family or Group directly.
Result<DimensionSchema> HealthcareSchema();

/// Product dimension: Product -> {Brand, Category}, Brand -> Company ->
/// All, Category -> Department -> All. Heterogeneity: own-label
/// products have no brand; branded products roll up to a company.
Result<DimensionSchema> ProductSchema();

/// Time dimension: Day -> Month -> Quarter -> Year -> All and
/// Day -> Week -> All. Weeks cross month and year boundaries, so Week
/// rolls up only to All — the textbook reason weekly aggregates cannot
/// rebuild yearly ones (Lenz & Shoshani's classic summarizability
/// failure, reproduced by the tests through Theorem 1).
Result<DimensionSchema> TimeSchema();

}  // namespace olapdc

#endif  // OLAPDC_WORKLOAD_REALISTIC_H_
