// Dimension-instance generation from frozen dimensions. The theory
// supplies the generator for free: by Theorem 3 every satisfiable
// schema has frozen dimensions, and any disjoint union of "blow-ups"
// of frozen dimensions — each category node replaced by a block of
// members with divisibility-consistent rollups — is a valid instance
// over the schema (conditions C1-C7 and Sigma hold by construction,
// which the tests re-verify via the model checker).
//
// Member counts follow branching^depth within each frozen structure
// (depth = longest path to All), capped by depth_cap; rollup mappings
// are i -> floor(i / branching^(depth delta)), which is path-
// independent because the exponent depends only on the endpoints.

#ifndef OLAPDC_WORKLOAD_INSTANCE_GENERATOR_H_
#define OLAPDC_WORKLOAD_INSTANCE_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "core/schema.h"
#include "dim/dimension_instance.h"
#include "olap/fact_table.h"

namespace olapdc {

struct InstanceGenOptions {
  /// Member multiplicity per depth level within a frozen structure.
  int branching = 2;
  /// Depth beyond which member counts stop growing.
  int depth_cap = 4;
  /// Independent copies of each frozen structure (linear size knob).
  int copies = 1;
  /// Frozen dimensions sampled per bottom category.
  size_t max_structures = 16;
  /// Skip the final O(members^~) validation pass for large instances.
  bool skip_validation = false;
};

/// Builds an instance of `ds` by blowing up the frozen dimensions of
/// every bottom category. Bottom categories that are unsatisfiable in
/// ds simply stay empty. Returns InvalidArgument if no bottom category
/// is satisfiable (the instance would be empty).
Result<DimensionInstance> GenerateInstanceFromFrozen(
    const DimensionSchema& ds, const InstanceGenOptions& options = {});

struct FactGenOptions {
  int facts_per_base_member = 2;
  /// Measures are integers in [1, max_measure] (integer-valued doubles
  /// keep SUM comparisons exact).
  int max_measure = 100;
  uint64_t seed = 7;
};

/// Random facts over the bottom-category members of `d`.
FactTable GenerateFacts(const DimensionInstance& d,
                        const FactGenOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_WORKLOAD_INSTANCE_GENERATOR_H_
