// Parametric random hierarchy-schema and constraint generators, the
// synthetic workload for the scaling (E7/E8), ablation (E9) and
// baseline (E10) benchmarks. The paper has no published testbed (its
// runtime study lives in an unavailable full version), so these
// generators realize the workload family its Section 5 heuristics are
// motivated by: layered DAGs where "heterogeneity arises as an
// exception, having most of the edges of the schema associated with
// *into* constraints".
//
// All generators are deterministic in their seed.

#ifndef OLAPDC_WORKLOAD_SCHEMA_GENERATOR_H_
#define OLAPDC_WORKLOAD_SCHEMA_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "core/schema.h"
#include "dim/hierarchy_schema.h"

namespace olapdc {

struct SchemaGenOptions {
  /// Number of category levels between the single bottom category and
  /// All (the bottom category "Base" is level 0; All sits above the
  /// last level).
  int num_levels = 4;
  /// Categories per intermediate level.
  int categories_per_level = 3;
  /// Probability of each optional extra edge (beyond the spanning
  /// edges that keep the schema well-formed).
  double extra_edge_prob = 0.3;
  /// How many levels an edge may jump (1 = only adjacent levels).
  int max_level_jump = 2;
  uint64_t seed = 1;
};

/// A layered random hierarchy schema. Category names are
/// "L<level>C<index>"; level 0 is the single bottom category "Base".
Result<HierarchySchemaPtr> GenerateLayeredHierarchy(
    const SchemaGenOptions& options);

struct ConstraintGenOptions {
  /// Fraction of schema edges turned into *into* constraints
  /// (heterogeneity-as-exception knob; 1.0 = fully homogeneous).
  double into_fraction = 0.5;
  /// Number of exclusive-choice constraints ⊙(c_p1, ..., c_pk) over
  /// categories with several parents.
  int num_choice_constraints = 2;
  /// Number of equality-conditioned constraints
  /// (c.t = k  ->  c_p) tying a structural choice to an ancestor name.
  int num_equality_constraints = 2;
  /// Constants drawn per equality constraint target (the paper's N_K
  /// knob).
  int num_constants = 2;
  uint64_t seed = 1;
};

/// Random dimension constraints over `schema`. Into constraints are
/// sampled per edge; choice/equality constraints are sampled over
/// categories with out-degree >= 2. The result is not guaranteed
/// satisfiable for every category — both outcomes are legitimate
/// satisfiability workloads.
Result<DimensionSchema> GenerateConstrainedSchema(
    const HierarchySchemaPtr& schema, const ConstraintGenOptions& options);

struct MultiComponentGenOptions {
  /// Independent sub-hierarchies hanging between Base and All — the
  /// decomposition-friendly shape (mixed-rollup geography, parallel
  /// fiscal/calendar paths, ...). No edge or constraint crosses
  /// components, so ComputeComponentSplit recovers exactly this many
  /// components for queries rooted at Base.
  int num_components = 3;
  /// Intermediate levels inside each component above its entry hub.
  int levels_per_component = 2;
  /// Categories per intermediate level of each component.
  int categories_per_level = 3;
  /// Probability of extra (non-spanning) comp-internal edges.
  double extra_edge_prob = 0.35;
  /// Fraction of comp-internal edges carrying an into constraint.
  double into_fraction = 0.3;
  /// Exclusive-choice constraints per component (always at least the
  /// hub choice when the hub has >= 2 successors).
  int num_choice_constraints = 1;
  uint64_t seed = 1;
};

/// A schema of `num_components` disjoint sub-hierarchies:
/// Base -> P<k>Hub -> P<k>L<level>C<i> -> ... -> All. Each hub fans
/// out to every first-level category of its component — a
/// deliberately pessimal shape for declaration-order branching, which
/// meets the wide hubs first, while the most-constrained-first
/// heuristic defers them behind the into-forced interior. Base's own
/// edges carry no constraints, so every component is absent-valid.
Result<DimensionSchema> GenerateMultiComponentSchema(
    const MultiComponentGenOptions& options);

}  // namespace olapdc

#endif  // OLAPDC_WORKLOAD_SCHEMA_GENERATOR_H_
