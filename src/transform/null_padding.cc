#include "transform/null_padding.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/algorithms.h"

namespace olapdc {

namespace {

/// Union-find over node ids where "real" elements (original members)
/// dominate placeholder elements; unioning two distinct real elements
/// is the unrepresentable case and is reported by Union returning
/// false.
class Fusion {
 public:
  Fusion(int num_elements, int num_real)
      : parent_(num_elements), num_real_(num_real) {
    for (int i = 0; i < num_elements; ++i) parent_[i] = i;
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool IsReal(int x) const { return x < num_real_; }

  /// Merges the classes of a and b; keeps the real representative on
  /// top. Returns false when both classes are rooted at distinct real
  /// members (fusion impossible).
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    if (IsReal(a) && IsReal(b)) return false;
    if (IsReal(b)) std::swap(a, b);
    parent_[b] = a;  // a is real if either is
    return true;
  }

 private:
  std::vector<int> parent_;
  int num_real_;
};

}  // namespace

Result<NullPaddingResult> PadWithNullMembers(const DimensionInstance& d,
                                             const std::string& prefix) {
  const HierarchySchema& schema = d.hierarchy();
  if (HasCycle(schema.graph())) {
    return Status::InvalidArgument(
        "null padding requires an acyclic hierarchy schema");
  }

  // ------------------------------------------------------------------
  // 1. Create placeholder nodes: for each member z, one per category in
  //    the "missing chain" reachable from cat(z) (upward BFS that stops
  //    as soon as a real ancestor resumes).
  const int num_real = d.num_members();
  struct Placeholder {
    MemberId owner;
    CategoryId category;
  };
  std::vector<Placeholder> placeholders;
  // placeholder_id_of[z * C + c] -> element id (or -1).
  const int num_categories = schema.num_categories();
  std::vector<int> placeholder_of(
      static_cast<size_t>(num_real) * num_categories, -1);
  auto placeholder_id = [&](MemberId z, CategoryId c) {
    return placeholder_of[static_cast<size_t>(z) * num_categories + c];
  };

  std::vector<std::pair<int, int>> edges;  // over element ids
  for (const auto& [x, y] : d.child_parent().Edges()) edges.emplace_back(x, y);

  for (MemberId z = 0; z < num_real; ++z) {
    const Member& member = d.member(z);
    if (member.category == schema.all()) continue;

    auto ensure_placeholder = [&](CategoryId c) {
      int& slot = placeholder_of[static_cast<size_t>(z) * num_categories + c];
      if (slot < 0) {
        slot = num_real + static_cast<int>(placeholders.size());
        placeholders.push_back(Placeholder{z, c});
      }
      return slot;
    };

    std::vector<CategoryId> frontier;
    for (CategoryId next : schema.graph().OutNeighbors(member.category)) {
      if (next == schema.all()) continue;
      if (d.RollUpMember(z, next) != kNoMember) continue;
      bool fresh = placeholder_id(z, next) < 0;
      edges.emplace_back(z, ensure_placeholder(next));
      if (fresh) frontier.push_back(next);
    }
    while (!frontier.empty()) {
      CategoryId c = frontier.back();
      frontier.pop_back();
      const int from = placeholder_id(z, c);
      for (CategoryId next : schema.graph().OutNeighbors(c)) {
        if (next == schema.all()) {
          edges.emplace_back(from, d.all_member());
          continue;
        }
        MemberId real = d.RollUpMember(z, next);
        if (real != kNoMember) {
          edges.emplace_back(from, real);
          continue;
        }
        bool fresh = placeholder_id(z, next) < 0;
        edges.emplace_back(from, ensure_placeholder(next));
        if (fresh) frontier.push_back(next);
      }
    }
  }

  const int num_elements = num_real + static_cast<int>(placeholders.size());
  auto category_of = [&](int element) {
    return element < num_real ? d.member(element).category
                              : placeholders[element - num_real].category;
  };

  // ------------------------------------------------------------------
  // 2. Fuse placeholders until the padded graph is strict again (C2):
  //    fixpoint of the ancestor-uniqueness propagation with union-find
  //    merging. Two distinct *real* candidates cannot be merged — that
  //    is exactly the class of dimensions Pedersen & Jensen's
  //    transformation does not handle (paper Section 1.3).
  Digraph padded_graph(num_elements);
  for (const auto& [u, v] : edges) padded_graph.AddEdge(u, v);
  Result<std::vector<int>> topo = TopologicalSort(padded_graph);
  if (!topo.ok()) {
    return Status::Internal("padded member graph unexpectedly cyclic");
  }
  std::vector<int> parents_first = std::move(topo).ValueOrDie();
  std::reverse(parents_first.begin(), parents_first.end());

  Fusion fusion(num_elements, num_real);
  bool changed = true;
  while (changed) {
    changed = false;
    for (CategoryId c = 0; c < num_categories; ++c) {
      std::vector<int> anc(num_elements, -1);
      for (int x : parents_first) {
        for (int p : padded_graph.OutNeighbors(x)) {
          int candidate =
              (category_of(p) == c) ? fusion.Find(p) : anc[p];
          if (candidate < 0) continue;
          candidate = fusion.Find(candidate);
          if (anc[x] < 0) {
            anc[x] = candidate;
          } else if (fusion.Find(anc[x]) != candidate) {
            if (!fusion.Union(anc[x], candidate)) {
              return Status::InvalidModel(
                  "null padding would need to fuse two distinct real "
                  "members of category '" + schema.CategoryName(c) +
                  "' — instance outside the restricted class handled by "
                  "the Pedersen-Jensen transformation");
            }
            anc[x] = fusion.Find(anc[x]);
            changed = true;
          }
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // 3. Materialize the fused graph as a DimensionInstance.
  DimensionInstanceBuilder builder(d.schema());
  builder.set_auto_all(true).set_auto_link_to_all(false).set_skip_validation(
      true);

  auto element_key = [&](int element) -> std::string {
    element = fusion.Find(element);
    if (element < num_real) return d.member(element).key;
    const Placeholder& p = placeholders[element - num_real];
    return prefix + schema.CategoryName(p.category) + ":" +
           d.member(p.owner).key;
  };

  for (MemberId m = 0; m < num_real; ++m) {
    const Member& member = d.member(m);
    builder.AddMember(member.key, schema.CategoryName(member.category),
                      member.name);
  }
  int added_members = 0;
  for (int i = 0; i < static_cast<int>(placeholders.size()); ++i) {
    const int element = num_real + i;
    if (fusion.Find(element) != element) continue;  // fused away
    builder.AddMember(element_key(element),
                      schema.CategoryName(placeholders[i].category),
                      "N/A");
    ++added_members;
  }

  std::vector<std::pair<std::string, std::string>> final_edges;
  for (const auto& [u, v] : edges) {
    std::string ku = element_key(u);
    std::string kv = element_key(v);
    if (ku == kv) continue;  // collapsed by fusion
    final_edges.emplace_back(std::move(ku), std::move(kv));
  }
  std::sort(final_edges.begin(), final_edges.end());
  final_edges.erase(std::unique(final_edges.begin(), final_edges.end()),
                    final_edges.end());
  for (const auto& [ku, kv] : final_edges) builder.AddChildParent(ku, kv);

  OLAPDC_ASSIGN_OR_RETURN(DimensionInstance padded, builder.Build());
  // C5 is relaxed by design; everything else (in particular C2) must
  // hold after fusion.
  OLAPDC_RETURN_NOT_OK(padded.Validate(/*enforce_shortcut_condition=*/false));

  NullPaddingResult result{std::move(padded), {}};
  result.stats.original_members = num_real;
  result.stats.padded_members = added_members;
  result.stats.original_edges = d.child_parent().num_edges();
  result.stats.padded_edges =
      result.padded.child_parent().num_edges() - result.stats.original_edges;
  result.stats.placeholder_fraction =
      static_cast<double>(added_members) /
      static_cast<double>(num_real + added_members);
  return result;
}

}  // namespace olapdc
