// The Pedersen & Jensen null-member transformation (paper Section 1.3,
// ref [14] "Extending practical pre-aggregation in OLAP"): make a
// heterogeneous dimension instance homogeneous by inserting placeholder
// ("null") members wherever a member lacks an ancestor in a category
// above it, so that every rollup mapping becomes total.
//
// The paper criticizes this approach: "null members may cause
// considerable waste of memory and computational effort due to the
// increased sparsity of the cube views". The transform therefore
// reports exactly that waste (members/edges added, padded fraction), and
// the transform_baselines benchmark (E13) measures it against the
// constraint-based alternative that leaves the instance untouched.
//
// The padded instance satisfies C1-C4, C6, C7; C5 (no shortcuts) is
// relaxed, as in Pedersen & Jensen's model, because a placeholder chain
// may shadow or be shadowed by real links (validate with
// Validate(/*enforce_shortcut_condition=*/false)).

#ifndef OLAPDC_TRANSFORM_NULL_PADDING_H_
#define OLAPDC_TRANSFORM_NULL_PADDING_H_

#include <string>

#include "common/result.h"
#include "dim/dimension_instance.h"

namespace olapdc {

struct NullPaddingStats {
  int original_members = 0;
  int padded_members = 0;   // placeholder members added
  int original_edges = 0;
  int padded_edges = 0;     // edges added
  /// Members of the result that are placeholders, as a fraction.
  double placeholder_fraction = 0.0;
};

struct NullPaddingResult {
  DimensionInstance padded;
  NullPaddingStats stats;
};

/// Pads `d` so that every member rolls up to every category reachable
/// from its category in the hierarchy schema. Placeholder members are
/// keyed `prefix + category + ":" + member key` (one per member and
/// missing category — the per-member cost is intentional; sharing
/// placeholders would merge unrelated aggregates).
Result<NullPaddingResult> PadWithNullMembers(const DimensionInstance& d,
                                             const std::string& prefix = "na:");

}  // namespace olapdc

#endif  // OLAPDC_TRANSFORM_NULL_PADDING_H_
