#include "transform/split_constraints.h"

#include <algorithm>
#include <utility>

namespace olapdc {

Result<DimensionConstraint> CompileSplitConstraint(
    const HierarchySchema& schema, const SplitConstraint& split) {
  if (split.root < 0 || split.root >= schema.num_categories()) {
    return Status::InvalidArgument("split-constraint root out of range");
  }
  if (split.alternatives.empty()) {
    return Status::InvalidArgument(
        "split constraint needs at least one alternative");
  }
  const std::vector<CategoryId>& successors =
      schema.graph().OutNeighbors(split.root);

  std::vector<ExprPtr> alternatives;
  alternatives.reserve(split.alternatives.size());
  for (const std::vector<CategoryId>& alt : split.alternatives) {
    if (alt.empty()) {
      return Status::InvalidArgument(
          "split-constraint alternative cannot be empty (condition C7 "
          "requires at least one parent)");
    }
    std::vector<ExprPtr> literals;
    for (CategoryId p : successors) {
      const bool positive = std::find(alt.begin(), alt.end(), p) != alt.end();
      ExprPtr atom = MakePathAtom({split.root, p});
      literals.push_back(positive ? atom : MakeNot(std::move(atom)));
    }
    for (CategoryId p : alt) {
      if (std::find(successors.begin(), successors.end(), p) ==
          successors.end()) {
        return Status::InvalidArgument(
            "alternative category '" + schema.CategoryName(p) +
            "' is not directly above '" +
            schema.CategoryName(split.root) + "'");
      }
    }
    literals.shrink_to_fit();
    alternatives.push_back(literals.size() == 1 ? literals[0]
                                                : MakeAnd(std::move(literals)));
  }
  ExprPtr expr = alternatives.size() == 1 ? alternatives[0]
                                          : MakeOr(std::move(alternatives));
  return MakeConstraint(schema, std::move(expr));
}

}  // namespace olapdc
