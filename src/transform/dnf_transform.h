// The Lehner/Albrecht/Wedekind "dimensional normal form" baseline
// (paper Section 1.3, ref [11]): transform a heterogeneous dimension
// into a homogeneous one by *demoting* the categories that cause
// heterogeneity from the hierarchy to mere attributes. The hierarchy
// keeps only categories every base member rolls up to; the demoted
// categories survive as per-member attribute annotations outside the
// hierarchy.
//
// The paper's criticism: "the proposed transformation flattens the
// child/parent relation, limiting summarizability in the dimension
// instance" — after the transform, no cube view can be (correctly)
// derived at a demoted category. The transform reports exactly which
// categories (and thus which aggregation levels) are lost; benchmark
// E13 quantifies this against constraint-based reasoning, which loses
// nothing.

#ifndef OLAPDC_TRANSFORM_DNF_TRANSFORM_H_
#define OLAPDC_TRANSFORM_DNF_TRANSFORM_H_

#include <map>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "dim/dimension_instance.h"

namespace olapdc {

struct DnfResult {
  /// The homogenized instance over the reduced hierarchy schema.
  DimensionInstance homogeneous;
  /// Categories kept in the hierarchy (ids of the *original* schema).
  std::vector<CategoryId> kept;
  /// Categories demoted to attributes (ids of the original schema).
  std::vector<CategoryId> demoted;
  /// Attribute tables: demoted category -> (base-ish member key ->
  /// name of its former ancestor in that category). Only members that
  /// actually had such an ancestor appear.
  std::map<CategoryId, std::map<std::string, std::string>> attributes;
};

/// Computes the DNF transform of `d`: a category is kept iff every
/// member of every bottom category rolls up to it; demoted categories
/// are spliced out of the child/parent relation (children re-linked to
/// the nearest kept ancestors) and recorded as attributes. `budget`
/// (not owned, may be null) bounds the member scans: on expiry the
/// transform aborts with the budget status — a partially spliced
/// instance would be silently wrong, so there is no partial result.
Result<DnfResult> ToDimensionalNormalForm(const DimensionInstance& d,
                                          const Budget* budget = nullptr);

}  // namespace olapdc

#endif  // OLAPDC_TRANSFORM_DNF_TRANSFORM_H_
