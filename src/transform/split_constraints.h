// Split constraints (paper Section 1.3, ref [6] — Hurtado & Mendelzon,
// ICDT 2001): statements of the form
//     c  =>  { S1, ..., Sm }
// where each Si is a set of categories directly above c, meaning that
// the set of categories in which a member of c has direct parents is
// exactly one of the alternatives Si. The paper observes that split
// constraints are a strict subclass of dimension constraints; this
// module realizes the inclusion by compiling a split constraint into an
// equivalent dimension constraint over path atoms, so all of the
// DIMSAT machinery applies to legacy split-constraint schemas.

#ifndef OLAPDC_TRANSFORM_SPLIT_CONSTRAINTS_H_
#define OLAPDC_TRANSFORM_SPLIT_CONSTRAINTS_H_

#include <vector>

#include "common/result.h"
#include "constraint/expr.h"
#include "dim/hierarchy_schema.h"

namespace olapdc {

/// A split constraint: members of `root` have direct parents in exactly
/// one of the `alternatives` (each a set of categories directly above
/// `root` in the schema).
struct SplitConstraint {
  CategoryId root = kNoCategory;
  std::vector<std::vector<CategoryId>> alternatives;
};

/// Compiles into the equivalent dimension constraint
///   OR_i ( AND_{p in Si} root_p  AND  AND_{p in Out(root)\Si} !root_p ).
/// Distinct alternatives cannot hold simultaneously (the parent-set is
/// pinned exactly), so plain disjunction is faithful.
Result<DimensionConstraint> CompileSplitConstraint(
    const HierarchySchema& schema, const SplitConstraint& split);

}  // namespace olapdc

#endif  // OLAPDC_TRANSFORM_SPLIT_CONSTRAINTS_H_
