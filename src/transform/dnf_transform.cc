#include "transform/dnf_transform.h"

#include <algorithm>
#include <utility>

namespace olapdc {

Result<DnfResult> ToDimensionalNormalForm(const DimensionInstance& d,
                                          const Budget* budget) {
  const HierarchySchema& schema = d.hierarchy();
  const int num_categories = schema.num_categories();
  BudgetChecker budget_checker(budget, BudgetChecker::kDefaultStride,
                               "transform.dnf");

  // A category is kept iff every base member (member of a bottom
  // category) rolls up to it. Bottom categories and All are always
  // kept.
  DynamicBitset kept(num_categories);
  kept.set(schema.all());
  for (CategoryId b : schema.bottom_categories()) kept.set(b);
  for (CategoryId c = 0; c < num_categories; ++c) {
    if (kept.test(c)) continue;
    bool universal = true;
    for (CategoryId b : schema.bottom_categories()) {
      for (MemberId x : d.MembersOf(b)) {
        OLAPDC_RETURN_NOT_OK(budget_checker.Check());
        universal &= d.RollsUpToCategory(x, c);
        if (!universal) break;
      }
      if (!universal) break;
    }
    if (universal) kept.set(c);
  }

  std::vector<CategoryId> kept_list;
  std::vector<CategoryId> demoted_list;
  for (CategoryId c = 0; c < num_categories; ++c) {
    (kept.test(c) ? kept_list : demoted_list).push_back(c);
  }

  // Attribute tables: record, per demoted category, the former ancestor
  // name of every base member.
  std::map<CategoryId, std::map<std::string, std::string>> attributes;
  for (CategoryId c : demoted_list) {
    auto& table = attributes[c];
    for (CategoryId b : schema.bottom_categories()) {
      for (MemberId x : d.MembersOf(b)) {
        OLAPDC_RETURN_NOT_OK(budget_checker.Check());
        MemberId ancestor = d.RollUpMember(x, c);
        if (ancestor != kNoMember) {
          table[d.member(x).key] = d.member(ancestor).name;
        }
      }
    }
  }

  // Per kept member, its rollup targets into kept categories; edges go
  // to the *minimal* targets (not dominated by another target), which
  // keeps the spliced instance shortcut-free and preserves every rollup
  // into kept categories.
  struct PendingEdge {
    MemberId child;
    MemberId parent;
  };
  std::vector<PendingEdge> member_edges;
  std::vector<std::pair<CategoryId, CategoryId>> category_edges;
  for (CategoryId c = 0; c < num_categories; ++c) {
    if (!kept.test(c)) continue;
    for (MemberId x : d.MembersOf(c)) {
      if (x == d.all_member()) continue;
      OLAPDC_RETURN_NOT_OK(budget_checker.Check());
      std::vector<MemberId> targets;
      kept.ForEach([&](int kc) {
        if (kc == c) return;
        MemberId t = d.RollUpMember(x, kc);
        if (t != kNoMember) targets.push_back(t);
      });
      for (MemberId a : targets) {
        bool minimal = true;
        for (MemberId b : targets) {
          if (b != a && d.RollsUpTo(b, a)) minimal = false;
        }
        if (minimal) {
          member_edges.push_back(PendingEdge{x, a});
          category_edges.emplace_back(c, d.member(a).category);
        }
      }
    }
  }

  // Reduced hierarchy schema over the kept categories.
  HierarchySchemaBuilder schema_builder;
  kept.ForEach([&](int c) { schema_builder.AddCategory(schema.CategoryName(c)); });
  std::sort(category_edges.begin(), category_edges.end());
  category_edges.erase(
      std::unique(category_edges.begin(), category_edges.end()),
      category_edges.end());
  for (const auto& [c1, c2] : category_edges) {
    schema_builder.AddEdge(schema.CategoryName(c1), schema.CategoryName(c2));
  }
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr reduced,
                          schema_builder.BuildShared());

  DimensionInstanceBuilder builder(reduced);
  builder.set_auto_all(true).set_auto_link_to_all(false);
  kept.ForEach([&](int c) {
    for (MemberId x : d.MembersOf(c)) {
      builder.AddMember(d.member(x).key, schema.CategoryName(c),
                        d.member(x).name);
    }
  });
  for (const PendingEdge& e : member_edges) {
    builder.AddChildParent(d.member(e.child).key, d.member(e.parent).key);
  }
  OLAPDC_ASSIGN_OR_RETURN(DimensionInstance homogeneous, builder.Build());
  return DnfResult{std::move(homogeneous), std::move(kept_list),
                   std::move(demoted_list), std::move(attributes)};
}

}  // namespace olapdc
