#include "constraint/printer.h"

#include <cstdio>

#include "common/string_util.h"

namespace olapdc {

namespace {

/// Shortest round-trippable rendering of a numeric threshold.
std::string FormatThreshold(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

// Binding strength: higher binds tighter. A child is parenthesized when
// its level is strictly lower than the context requires.
int Level(ExprKind kind) {
  switch (kind) {
    case ExprKind::kEquiv:
      return 1;
    case ExprKind::kImplies:
      return 2;
    case ExprKind::kXor:
      return 3;
    case ExprKind::kOr:
      return 4;
    case ExprKind::kAnd:
      return 5;
    case ExprKind::kNot:
      return 6;
    default:
      return 7;  // atoms, literals, one(...)
  }
}

class Printer {
 public:
  Printer(const HierarchySchema& schema, const PrinterOptions& options)
      : schema_(schema), paper_(options.paper_symbols) {}

  std::string Print(const ExprPtr& e, int min_level) const {
    std::string body = PrintNode(e);
    if (Level(e->kind) < min_level) return "(" + body + ")";
    return body;
  }

 private:
  std::string Name(CategoryId c) const { return schema_.CategoryName(c); }

  std::string Constant(const std::string& k) const {
    if (paper_) return k;
    return "'" + k + "'";
  }

  std::string PrintNode(const ExprPtr& e) const {
    switch (e->kind) {
      case ExprKind::kTrue:
        return paper_ ? "⊤" : "true";  // ⊤
      case ExprKind::kFalse:
        return paper_ ? "⊥" : "false";  // ⊥
      case ExprKind::kPathAtom:
        return JoinMapped(e->path, paper_ ? "_" : "/",
                          [&](CategoryId c) { return Name(c); });
      case ExprKind::kEqualityAtom: {
        std::string lhs = (e->target == e->root)
                              ? Name(e->root)
                              : Name(e->root) + "." + Name(e->target);
        return lhs + (paper_ ? "≈" : " = ") + Constant(e->constant);
      }
      case ExprKind::kComposedAtom:
        return Name(e->root) + "." + Name(e->target);
      case ExprKind::kThroughAtom:
        return Name(e->root) + "." + Name(e->via) + "." + Name(e->target);
      case ExprKind::kOrderAtom: {
        std::string lhs = (e->target == e->root)
                              ? Name(e->root)
                              : Name(e->root) + "." + Name(e->target);
        return lhs + " " + std::string(CmpOpToString(e->cmp_op)) + " " +
               FormatThreshold(e->threshold);
      }
      case ExprKind::kNot:
        return (paper_ ? "¬" : "!") +
               Print(e->children[0], Level(ExprKind::kNot));
      case ExprKind::kAnd:
        return PrintNary(e, paper_ ? " ∧ " : " & ", ExprKind::kAnd);
      case ExprKind::kOr:
        return PrintNary(e, paper_ ? " ∨ " : " | ", ExprKind::kOr);
      case ExprKind::kXor:
        return PrintNary(e, paper_ ? " ⊕ " : " ^ ", ExprKind::kXor);
      case ExprKind::kImplies:
        // Right-associative: the left operand needs strictly tighter
        // binding, the right may be another implication.
        return Print(e->children[0], Level(ExprKind::kImplies) + 1) +
               (paper_ ? " ⊃ " : " -> ") +
               Print(e->children[1], Level(ExprKind::kImplies));
      case ExprKind::kEquiv:
        return PrintNary(e, paper_ ? " ≡ " : " <-> ", ExprKind::kEquiv);
      case ExprKind::kExactlyOne:
        return (paper_ ? std::string("⊙(") : std::string("one(")) +
               JoinMapped(e->children, ", ",
                          [&](const ExprPtr& c) { return Print(c, 0); }) +
               ")";
    }
    return "?";
  }

  std::string PrintNary(const ExprPtr& e, const std::string& op,
                        ExprKind kind) const {
    if (e->children.empty()) {
      return kind == ExprKind::kAnd ? PrintNode(MakeTrue())
                                    : PrintNode(MakeFalse());
    }
    // AND/OR parse n-ary (a & b & c is one flat node), so a *nested*
    // same-kind child must keep its parentheses or re-parsing would
    // flatten it into a different tree. The binary left-associative
    // connectives (equiv, xor) re-parse nesting correctly, so their
    // first child may sit at the same level.
    const bool parses_nary =
        kind == ExprKind::kAnd || kind == ExprKind::kOr;
    const int first_level = Level(kind) + (parses_nary ? 1 : 0);
    std::string out = Print(e->children[0], first_level);
    for (size_t i = 1; i < e->children.size(); ++i) {
      out += op + Print(e->children[i], Level(kind) + 1);
    }
    return out;
  }

  const HierarchySchema& schema_;
  bool paper_;
};

}  // namespace

std::string ExprToString(const HierarchySchema& schema, const ExprPtr& e,
                         const PrinterOptions& options) {
  OLAPDC_CHECK(e != nullptr);
  return Printer(schema, options).Print(e, 0);
}

std::string ConstraintToString(const HierarchySchema& schema,
                               const DimensionConstraint& c,
                               const PrinterOptions& options) {
  std::string out;
  if (!c.label.empty()) out += c.label + " ";
  out += ExprToString(schema, c.expr, options);
  return out;
}

}  // namespace olapdc
