#include "constraint/parser.h"

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace olapdc {

namespace {

enum class TokKind {
  kIdent,
  kString,  // quoted constant
  kNumber,
  kLParen,
  kRParen,
  kComma,
  kSlash,
  kDot,
  kEquals,
  kBang,
  kAmp,
  kPipe,
  kCaret,
  kArrow,   // -> or =>
  kDArrow,  // <-> or <=>
  kLess,    // <
  kLessEq,  // <=
  kGreater, // >
  kGreaterEq,  // >=
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipSpace();
      size_t pos = i_;
      if (i_ >= text_.size()) {
        tokens.push_back({TokKind::kEnd, "", pos});
        return tokens;
      }
      char c = text_[i_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i_;
        while (i_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[i_])) ||
                text_[i_] == '_')) {
          ++i_;
        }
        tokens.push_back(
            {TokKind::kIdent, std::string(text_.substr(start, i_ - start)),
             pos});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = i_;
        while (i_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[i_])) ||
                text_[i_] == '.')) {
          ++i_;
        }
        tokens.push_back(
            {TokKind::kNumber, std::string(text_.substr(start, i_ - start)),
             pos});
        continue;
      }
      if (c == '\'' || c == '"') {
        char quote = c;
        ++i_;
        size_t start = i_;
        while (i_ < text_.size() && text_[i_] != quote) ++i_;
        if (i_ >= text_.size()) {
          return Status::ParseError("unterminated string constant at offset " +
                                    std::to_string(pos));
        }
        tokens.push_back(
            {TokKind::kString, std::string(text_.substr(start, i_ - start)),
             pos});
        ++i_;
        continue;
      }
      if (Match("<->") || Match("<=>")) {
        tokens.push_back({TokKind::kDArrow, "", pos});
        continue;
      }
      if (Match("->") || Match("=>")) {
        tokens.push_back({TokKind::kArrow, "", pos});
        continue;
      }
      if (Match("<=")) {
        tokens.push_back({TokKind::kLessEq, "", pos});
        continue;
      }
      if (Match(">=")) {
        tokens.push_back({TokKind::kGreaterEq, "", pos});
        continue;
      }
      if (Match("<")) {
        tokens.push_back({TokKind::kLess, "", pos});
        continue;
      }
      if (Match(">")) {
        tokens.push_back({TokKind::kGreater, "", pos});
        continue;
      }
      TokKind kind;
      switch (c) {
        case '(': kind = TokKind::kLParen; break;
        case ')': kind = TokKind::kRParen; break;
        case ',': kind = TokKind::kComma; break;
        case '/': kind = TokKind::kSlash; break;
        case '.': kind = TokKind::kDot; break;
        case '=': kind = TokKind::kEquals; break;
        case '!': kind = TokKind::kBang; break;
        case '&': kind = TokKind::kAmp; break;
        case '|': kind = TokKind::kPipe; break;
        case '^': kind = TokKind::kCaret; break;
        default:
          return Status::ParseError("unexpected character '" +
                                    std::string(1, c) + "' at offset " +
                                    std::to_string(pos));
      }
      ++i_;
      tokens.push_back({kind, "", pos});
    }
  }

 private:
  void SkipSpace() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      ++i_;
    }
  }

  bool Match(std::string_view s) {
    if (text_.substr(i_, s.size()) == s) {
      i_ += s.size();
      return true;
    }
    return false;
  }

  std::string_view text_;
  size_t i_ = 0;
};

class Parser {
 public:
  Parser(const HierarchySchema& schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    OLAPDC_ASSIGN_OR_RETURN(ExprPtr e, ParseEquiv());
    if (Peek().kind != TokKind::kEnd) {
      return Err("trailing input");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[i_]; }
  Token Take() { return tokens_[i_++]; }
  bool Accept(TokKind kind) {
    if (Peek().kind == kind) {
      ++i_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().pos));
  }

  Result<ExprPtr> ParseEquiv() {
    OLAPDC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseImpl());
    while (Accept(TokKind::kDArrow)) {
      OLAPDC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseImpl());
      lhs = MakeEquiv(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseImpl() {
    OLAPDC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseXor());
    if (Accept(TokKind::kArrow)) {
      OLAPDC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseImpl());  // right assoc
      return MakeImplies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseXor() {
    OLAPDC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOr());
    while (Accept(TokKind::kCaret)) {
      OLAPDC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOr());
      lhs = MakeXor(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseOr() {
    OLAPDC_ASSIGN_OR_RETURN(ExprPtr first, ParseAnd());
    std::vector<ExprPtr> operands{std::move(first)};
    while (Accept(TokKind::kPipe)) {
      OLAPDC_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
      operands.push_back(std::move(next));
    }
    if (operands.size() == 1) return operands[0];
    return MakeOr(std::move(operands));
  }

  Result<ExprPtr> ParseAnd() {
    OLAPDC_ASSIGN_OR_RETURN(ExprPtr first, ParseUnary());
    std::vector<ExprPtr> operands{std::move(first)};
    while (Accept(TokKind::kAmp)) {
      OLAPDC_ASSIGN_OR_RETURN(ExprPtr next, ParseUnary());
      operands.push_back(std::move(next));
    }
    if (operands.size() == 1) return operands[0];
    return MakeAnd(std::move(operands));
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokKind::kBang)) {
      OLAPDC_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return MakeNot(std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Accept(TokKind::kLParen)) {
      OLAPDC_ASSIGN_OR_RETURN(ExprPtr e, ParseEquiv());
      if (!Accept(TokKind::kRParen)) return Err("expected ')'");
      return e;
    }
    if (Peek().kind != TokKind::kIdent) {
      return Err("expected an atom, 'true', 'false', 'one(...)' or '('");
    }
    Token ident = Take();
    if (ident.text == "true") return MakeTrue();
    if (ident.text == "false") return MakeFalse();
    if (ident.text == "one" && Peek().kind == TokKind::kLParen) {
      Take();  // (
      std::vector<ExprPtr> operands;
      do {
        OLAPDC_ASSIGN_OR_RETURN(ExprPtr e, ParseEquiv());
        operands.push_back(std::move(e));
      } while (Accept(TokKind::kComma));
      if (!Accept(TokKind::kRParen)) return Err("expected ')' after one(...)");
      return MakeExactlyOne(std::move(operands));
    }
    return ParseAtom(std::move(ident));
  }

  Result<CategoryId> Category(const Token& t) const {
    Result<CategoryId> c = schema_.CategoryIdOf(t.text);
    if (!c.ok()) {
      return Status::ParseError("unknown category '" + t.text +
                                "' at offset " + std::to_string(t.pos));
    }
    return c;
  }

  Result<ExprPtr> ParseAtom(Token first) {
    OLAPDC_ASSIGN_OR_RETURN(CategoryId root, Category(first));

    if (Peek().kind == TokKind::kSlash) {
      // Path atom: IDENT ('/' IDENT)+
      std::vector<CategoryId> path{root};
      while (Accept(TokKind::kSlash)) {
        if (Peek().kind != TokKind::kIdent) {
          return Err("expected category after '/'");
        }
        OLAPDC_ASSIGN_OR_RETURN(CategoryId c, Category(Take()));
        path.push_back(c);
      }
      return MakePathAtom(std::move(path));
    }

    if (Peek().kind == TokKind::kDot) {
      Take();  // .
      if (Peek().kind != TokKind::kIdent) {
        return Err("expected category after '.'");
      }
      OLAPDC_ASSIGN_OR_RETURN(CategoryId second, Category(Take()));
      if (Accept(TokKind::kDot)) {
        if (Peek().kind != TokKind::kIdent) {
          return Err("expected category after '.'");
        }
        OLAPDC_ASSIGN_OR_RETURN(CategoryId third, Category(Take()));
        return MakeThroughAtom(root, second, third);
      }
      if (Accept(TokKind::kEquals)) {
        OLAPDC_ASSIGN_OR_RETURN(std::string value, ParseValue());
        return MakeEqualityAtom(root, second, std::move(value));
      }
      if (IsOrderOp(Peek().kind)) {
        return ParseOrderTail(root, second);
      }
      return MakeComposedAtom(root, second);
    }

    if (Accept(TokKind::kEquals)) {
      OLAPDC_ASSIGN_OR_RETURN(std::string value, ParseValue());
      return MakeEqualityAtom(root, root, std::move(value));
    }
    if (IsOrderOp(Peek().kind)) {
      return ParseOrderTail(root, root);
    }

    return Err("expected '/', '.', '=' or a comparison after category '" +
               first.text + "'");
  }

  static bool IsOrderOp(TokKind kind) {
    return kind == TokKind::kLess || kind == TokKind::kLessEq ||
           kind == TokKind::kGreater || kind == TokKind::kGreaterEq;
  }

  /// Order atom tail: a comparison operator followed by a number.
  Result<ExprPtr> ParseOrderTail(CategoryId root, CategoryId target) {
    Token op = Take();
    if (Peek().kind != TokKind::kNumber) {
      return Err("expected a numeric constant after comparison");
    }
    std::optional<double> threshold = ParseNumericName(Take().text);
    if (!threshold.has_value()) {
      return Err("malformed numeric constant");
    }
    CmpOp cmp;
    switch (op.kind) {
      case TokKind::kLess: cmp = CmpOp::kLt; break;
      case TokKind::kLessEq: cmp = CmpOp::kLe; break;
      case TokKind::kGreater: cmp = CmpOp::kGt; break;
      default: cmp = CmpOp::kGe; break;
    }
    return MakeOrderAtom(root, target, cmp, *threshold);
  }

  Result<std::string> ParseValue() {
    if (Peek().kind == TokKind::kString || Peek().kind == TokKind::kNumber ||
        Peek().kind == TokKind::kIdent) {
      return Take().text;
    }
    return Err("expected a constant");
  }

  const HierarchySchema& schema_;
  std::vector<Token> tokens_;
  size_t i_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpr(const HierarchySchema& schema,
                          std::string_view text) {
  OLAPDC_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Lexer(text).Tokenize());
  return Parser(schema, std::move(tokens)).Parse();
}

Result<DimensionConstraint> ParseConstraint(const HierarchySchema& schema,
                                            std::string_view text,
                                            std::string label) {
  OLAPDC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr(schema, text));
  return MakeConstraint(schema, std::move(e), std::move(label));
}

Result<DimensionConstraint> ParseConstraintWithRoot(
    const HierarchySchema& schema, std::string_view root,
    std::string_view text, std::string label) {
  OLAPDC_ASSIGN_OR_RETURN(CategoryId root_id, schema.CategoryIdOf(root));
  OLAPDC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr(schema, text));
  return MakeConstraintWithRoot(schema, root_id, std::move(e),
                                std::move(label));
}

}  // namespace olapdc
