#include "constraint/evaluator.h"

namespace olapdc {

namespace {

/// The unique direct parent of x lying in category c, or kNoMember.
/// (Uniqueness: two direct parents in one category would violate C2.)
MemberId DirectParentIn(const DimensionInstance& d, MemberId x,
                        CategoryId c) {
  for (MemberId p : d.Parents(x)) {
    if (d.member(p).category == c) return p;
  }
  return kNoMember;
}

bool EvalPathAtom(const DimensionInstance& d, const Expr& e, MemberId x) {
  MemberId cur = x;
  for (size_t i = 1; i < e.path.size(); ++i) {
    cur = DirectParentIn(d, cur, e.path[i]);
    if (cur == kNoMember) return false;
  }
  return true;
}

bool EvalEqualityAtom(const DimensionInstance& d, const Expr& e, MemberId x) {
  MemberId ancestor = d.RollUpMember(x, e.target);
  return ancestor != kNoMember && d.member(ancestor).name == e.constant;
}

bool EvalOrderAtom(const DimensionInstance& d, const Expr& e, MemberId x) {
  MemberId ancestor = d.RollUpMember(x, e.target);
  if (ancestor == kNoMember) return false;
  std::optional<double> value = ParseNumericName(d.member(ancestor).name);
  return value.has_value() && EvalCmp(e.cmp_op, *value, e.threshold);
}

bool EvalComposedAtom(const DimensionInstance& d, const Expr& e, MemberId x) {
  if (e.root == e.target) return true;
  return d.RollsUpToCategory(x, e.target);
}

bool EvalThroughAtom(const DimensionInstance& d, const Expr& e, MemberId x) {
  const CategoryId c = e.root, ci = e.via, cj = e.target;
  // Mirror of the five shorthand cases (Section 3.3); see
  // normalize.cc's ExpandThrough.
  if (c == ci && ci == cj) return true;
  if (c == cj && c != ci) return false;
  if (c == ci && c != cj) return d.RollsUpToCategory(x, cj);
  if (ci == cj && c != ci) return d.RollsUpToCategory(x, ci);
  // All distinct: pass through the (unique) ancestor in ci, then on to
  // cj. Per-category ancestor uniqueness makes this equivalent to the
  // disjunction over simple paths through ci.
  MemberId via_member = d.RollUpMember(x, ci);
  if (via_member == kNoMember) return false;
  return d.RollsUpToCategory(via_member, cj);
}

}  // namespace

bool EvalForMember(const DimensionInstance& d, const Expr& e, MemberId x) {
  switch (e.kind) {
    case ExprKind::kTrue:
      return true;
    case ExprKind::kFalse:
      return false;
    case ExprKind::kPathAtom:
      return EvalPathAtom(d, e, x);
    case ExprKind::kEqualityAtom:
      return EvalEqualityAtom(d, e, x);
    case ExprKind::kOrderAtom:
      return EvalOrderAtom(d, e, x);
    case ExprKind::kComposedAtom:
      return EvalComposedAtom(d, e, x);
    case ExprKind::kThroughAtom:
      return EvalThroughAtom(d, e, x);
    case ExprKind::kNot:
      return !EvalForMember(d, *e.children[0], x);
    case ExprKind::kAnd:
      for (const auto& c : e.children) {
        if (!EvalForMember(d, *c, x)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const auto& c : e.children) {
        if (EvalForMember(d, *c, x)) return true;
      }
      return false;
    case ExprKind::kImplies:
      return !EvalForMember(d, *e.children[0], x) ||
             EvalForMember(d, *e.children[1], x);
    case ExprKind::kEquiv:
      return EvalForMember(d, *e.children[0], x) ==
             EvalForMember(d, *e.children[1], x);
    case ExprKind::kXor:
      return EvalForMember(d, *e.children[0], x) !=
             EvalForMember(d, *e.children[1], x);
    case ExprKind::kExactlyOne: {
      int count = 0;
      for (const auto& c : e.children) {
        if (EvalForMember(d, *c, x) && ++count > 1) return false;
      }
      return count == 1;
    }
  }
  return false;
}

bool Satisfies(const DimensionInstance& d, const DimensionConstraint& c) {
  OLAPDC_CHECK(c.expr != nullptr);
  for (MemberId x : d.MembersOf(c.root)) {
    if (!EvalForMember(d, *c.expr, x)) return false;
  }
  return true;
}

bool SatisfiesAll(const DimensionInstance& d,
                  const std::vector<DimensionConstraint>& sigma) {
  for (const DimensionConstraint& c : sigma) {
    if (!Satisfies(d, c)) return false;
  }
  return true;
}

std::vector<MemberId> ViolatingMembers(const DimensionInstance& d,
                                       const DimensionConstraint& c) {
  std::vector<MemberId> out;
  for (MemberId x : d.MembersOf(c.root)) {
    if (!EvalForMember(d, *c.expr, x)) out.push_back(x);
  }
  return out;
}

}  // namespace olapdc
