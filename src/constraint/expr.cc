#include "constraint/expr.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "graph/algorithms.h"

namespace olapdc {

namespace {

ExprPtr NewExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

ExprPtr NewExprWithChildren(ExprKind kind, std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  for (const auto& c : children) OLAPDC_CHECK(c != nullptr);
  e->children = std::move(children);
  return e;
}

}  // namespace

ExprPtr MakeTrue() {
  // Never-destroyed singleton (avoids static-destruction ordering).
  static const ExprPtr& kTrue = *new ExprPtr(NewExpr(ExprKind::kTrue));
  return kTrue;
}

ExprPtr MakeFalse() {
  static const ExprPtr& kFalse = *new ExprPtr(NewExpr(ExprKind::kFalse));
  return kFalse;
}

ExprPtr MakeBool(bool truth) { return truth ? MakeTrue() : MakeFalse(); }

ExprPtr MakePathAtom(std::vector<CategoryId> path) {
  OLAPDC_CHECK(path.size() >= 2) << "path atom needs root plus >= 1 step";
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kPathAtom;
  e->root = path[0];
  e->path = std::move(path);
  return e;
}

ExprPtr MakeEqualityAtom(CategoryId root, CategoryId target,
                         std::string constant) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kEqualityAtom;
  e->root = root;
  e->target = target;
  e->constant = std::move(constant);
  return e;
}

ExprPtr MakeComposedAtom(CategoryId root, CategoryId target) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kComposedAtom;
  e->root = root;
  e->target = target;
  return e;
}

ExprPtr MakeThroughAtom(CategoryId root, CategoryId via, CategoryId target) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kThroughAtom;
  e->root = root;
  e->via = via;
  e->target = target;
  return e;
}

ExprPtr MakeOrderAtom(CategoryId root, CategoryId target, CmpOp op,
                      double threshold) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kOrderAtom;
  e->root = root;
  e->target = target;
  e->cmp_op = op;
  e->threshold = threshold;
  return e;
}

bool EvalCmp(CmpOp op, double value, double threshold) {
  switch (op) {
    case CmpOp::kLt:
      return value < threshold;
    case CmpOp::kLe:
      return value <= threshold;
    case CmpOp::kGt:
      return value > threshold;
    case CmpOp::kGe:
      return value >= threshold;
  }
  return false;
}

std::string_view CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::optional<double> ParseNumericName(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

ExprPtr MakeNot(ExprPtr e) {
  return NewExprWithChildren(ExprKind::kNot, {std::move(e)});
}
ExprPtr MakeAnd(std::vector<ExprPtr> children) {
  return NewExprWithChildren(ExprKind::kAnd, std::move(children));
}
ExprPtr MakeOr(std::vector<ExprPtr> children) {
  return NewExprWithChildren(ExprKind::kOr, std::move(children));
}
ExprPtr MakeImplies(ExprPtr a, ExprPtr b) {
  return NewExprWithChildren(ExprKind::kImplies, {std::move(a), std::move(b)});
}
ExprPtr MakeEquiv(ExprPtr a, ExprPtr b) {
  return NewExprWithChildren(ExprKind::kEquiv, {std::move(a), std::move(b)});
}
ExprPtr MakeXor(ExprPtr a, ExprPtr b) {
  return NewExprWithChildren(ExprKind::kXor, {std::move(a), std::move(b)});
}
ExprPtr MakeExactlyOne(std::vector<ExprPtr> children) {
  return NewExprWithChildren(ExprKind::kExactlyOne, std::move(children));
}

void CollectAtoms(const ExprPtr& e, std::vector<const Expr*>* atoms) {
  OLAPDC_CHECK(e != nullptr);
  if (e->IsAtom()) {
    atoms->push_back(e.get());
    return;
  }
  for (const auto& child : e->children) CollectAtoms(child, atoms);
}

Result<CategoryId> InferRoot(const ExprPtr& e) {
  std::vector<const Expr*> atoms;
  CollectAtoms(e, &atoms);
  if (atoms.empty()) {
    return Status::NotFound("expression contains no atoms");
  }
  CategoryId root = atoms[0]->root;
  for (const Expr* atom : atoms) {
    if (atom->root != root) {
      return Status::InvalidArgument(
          "atoms of a dimension constraint must share one root category "
          "(Definition 3)");
    }
  }
  return root;
}

namespace {

Status ValidateConstraint(const HierarchySchema& schema,
                          const DimensionConstraint& c) {
  if (c.root < 0 || c.root >= schema.num_categories()) {
    return Status::InvalidArgument("constraint root out of range");
  }
  if (c.root == schema.all()) {
    return Status::InvalidArgument(
        "dimension constraints cannot be rooted at All (Definition 3)");
  }
  std::vector<const Expr*> atoms;
  CollectAtoms(c.expr, &atoms);
  for (const Expr* atom : atoms) {
    if (atom->root != c.root) {
      return Status::InvalidArgument(
          "atom root differs from constraint root");
    }
    switch (atom->kind) {
      case ExprKind::kPathAtom:
        if (!IsSimplePath(schema.graph(), atom->path)) {
          return Status::InvalidArgument(
              "path atom is not a simple path of the hierarchy schema");
        }
        break;
      case ExprKind::kEqualityAtom:
      case ExprKind::kComposedAtom:
      case ExprKind::kOrderAtom:
        if (atom->target < 0 || atom->target >= schema.num_categories()) {
          return Status::InvalidArgument("atom target out of range");
        }
        break;
      case ExprKind::kThroughAtom:
        if (atom->target < 0 || atom->target >= schema.num_categories() ||
            atom->via < 0 || atom->via >= schema.num_categories()) {
          return Status::InvalidArgument("atom category out of range");
        }
        break;
      default:
        return Status::Internal("unexpected atom kind");
    }
  }
  return Status::OK();
}

}  // namespace

Result<DimensionConstraint> MakeConstraint(const HierarchySchema& schema,
                                           ExprPtr e, std::string label) {
  OLAPDC_ASSIGN_OR_RETURN(CategoryId root, InferRoot(e));
  return MakeConstraintWithRoot(schema, root, std::move(e), std::move(label));
}

Result<DimensionConstraint> MakeConstraintWithRoot(
    const HierarchySchema& schema, CategoryId root, ExprPtr e,
    std::string label) {
  DimensionConstraint c{root, std::move(e), std::move(label)};
  OLAPDC_RETURN_NOT_OK(ValidateConstraint(schema, c));
  return c;
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->path != b->path || a->root != b->root ||
      a->via != b->via || a->target != b->target ||
      a->constant != b->constant || a->cmp_op != b->cmp_op ||
      a->threshold != b->threshold ||
      a->children.size() != b->children.size()) {
    return false;
  }
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!ExprEquals(a->children[i], b->children[i])) return false;
  }
  return true;
}

bool IsIntoConstraint(const DimensionConstraint& c, CategoryId* child,
                      CategoryId* parent) {
  if (c.expr == nullptr || c.expr->kind != ExprKind::kPathAtom ||
      c.expr->path.size() != 2) {
    return false;
  }
  if (child != nullptr) *child = c.expr->path[0];
  if (parent != nullptr) *parent = c.expr->path[1];
  return true;
}

void CollectConstantsFor(const ExprPtr& e, CategoryId c,
                         std::vector<std::string>* constants) {
  std::vector<const Expr*> atoms;
  CollectAtoms(e, &atoms);
  for (const Expr* atom : atoms) {
    if (atom->kind == ExprKind::kEqualityAtom && atom->target == c) {
      constants->push_back(atom->constant);
    }
  }
}

}  // namespace olapdc
