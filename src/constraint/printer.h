// Pretty-printing of dimension constraints, in two styles:
//  - ASCII (the parser's input syntax):  Store/City, Store.Country='USA',
//    !, &, |, ^, ->, <->, one(...)
//  - paper style (for figure reproductions): Store_City,
//    Store.Country~USA with unicode connectives.

#ifndef OLAPDC_CONSTRAINT_PRINTER_H_
#define OLAPDC_CONSTRAINT_PRINTER_H_

#include <string>

#include "constraint/expr.h"
#include "dim/hierarchy_schema.h"

namespace olapdc {

struct PrinterOptions {
  /// Emit the paper's notation (Store_City, unicode connectives)
  /// instead of the parseable ASCII syntax.
  bool paper_symbols = false;
};

/// Renders `e` with category names resolved against `schema`.
std::string ExprToString(const HierarchySchema& schema, const ExprPtr& e,
                         const PrinterOptions& options = {});

/// Renders a labeled constraint, e.g. "(a) Store/City".
std::string ConstraintToString(const HierarchySchema& schema,
                               const DimensionConstraint& c,
                               const PrinterOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_CONSTRAINT_PRINTER_H_
