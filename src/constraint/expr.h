// The dimension-constraint language (paper Section 3): Boolean
// combinations of path atoms and equality atoms, all rooted at a single
// category, plus the composed shorthands `c.ci` and `c.ci.cj` of
// Sections 3.1 and 3.3.
//
// Expressions are immutable trees shared via ExprPtr. Atoms reference
// categories by id relative to a HierarchySchema.

#ifndef OLAPDC_CONSTRAINT_EXPR_H_
#define OLAPDC_CONSTRAINT_EXPR_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dim/hierarchy_schema.h"

namespace olapdc {

enum class ExprKind {
  kTrue,
  kFalse,
  /// `c_c1_..._cn`: there is a chain of direct child/parent steps from
  /// the root member through members of c1, ..., cn. `path` holds
  /// [c, c1, ..., cn], which must be a simple path in the hierarchy
  /// schema (Definition 3).
  kPathAtom,
  /// `c.ci ~ k`: the root member has an ancestor (reflexively) in ci
  /// whose Name is the constant k.
  kEqualityAtom,
  /// `c.ci`: composed path atom — shorthand for the disjunction of all
  /// path atoms from c ending at ci (true outright when c == ci).
  kComposedAtom,
  /// `c.ci.cj`: the root member rolls up to cj passing through ci
  /// (Section 3.3's five-case shorthand).
  kThroughAtom,
  /// `c.ci < k` (and <=, >, >=): the root member has an ancestor in ci
  /// whose Name, read as a number, compares against the numeric
  /// constant k. This is the Section 6 "further built-in predicates"
  /// extension ("if the value of the price of a product is less than a
  /// given amount, the product rolls up to some particular path").
  /// An ancestor with a non-numeric Name never satisfies an order atom.
  kOrderAtom,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kEquiv,
  kXor,
  /// The paper's circled-dot operator: exactly one operand is true.
  kExactlyOne,
};

/// Comparison operator of an order atom.
enum class CmpOp { kLt, kLe, kGt, kGe };

/// Evaluates `value op threshold`.
bool EvalCmp(CmpOp op, double value, double threshold);

std::string_view CmpOpToString(CmpOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A node of a dimension-constraint expression tree. Construct via the
/// factory functions below; fields not applicable to `kind` are empty.
class Expr {
 public:
  ExprKind kind;
  /// kPathAtom: [root, c1, ..., cn], n >= 1.
  std::vector<CategoryId> path;
  /// All atoms: the root category.
  CategoryId root = kNoCategory;
  /// kThroughAtom: the category the path must pass through.
  CategoryId via = kNoCategory;
  /// kEqualityAtom / kComposedAtom / kThroughAtom: the end category.
  CategoryId target = kNoCategory;
  /// kEqualityAtom: the constant k.
  std::string constant;
  /// kOrderAtom: the comparison and its numeric threshold.
  CmpOp cmp_op = CmpOp::kLt;
  double threshold = 0.0;
  /// Connectives: operands (kNot: 1; kImplies/kEquiv/kXor: 2;
  /// kAnd/kOr/kExactlyOne: any number).
  std::vector<ExprPtr> children;

  bool IsAtom() const {
    return kind == ExprKind::kPathAtom || kind == ExprKind::kEqualityAtom ||
           kind == ExprKind::kComposedAtom ||
           kind == ExprKind::kThroughAtom || kind == ExprKind::kOrderAtom;
  }
  bool IsLiteralTruth() const {
    return kind == ExprKind::kTrue || kind == ExprKind::kFalse;
  }
};

// ---------------------------------------------------------------------
// Factory functions.

ExprPtr MakeTrue();
ExprPtr MakeFalse();
/// `truth ? True : False`.
ExprPtr MakeBool(bool truth);

/// Path atom over the node sequence [root, c1, ..., cn]; requires
/// size >= 2. (Whether it is a simple path of the schema is checked by
/// ValidateConstraint.)
ExprPtr MakePathAtom(std::vector<CategoryId> path);

/// Equality atom root.target ~ constant.
ExprPtr MakeEqualityAtom(CategoryId root, CategoryId target,
                         std::string constant);

/// Composed path atom root.target.
ExprPtr MakeComposedAtom(CategoryId root, CategoryId target);

/// Through shorthand root.via.target.
ExprPtr MakeThroughAtom(CategoryId root, CategoryId via, CategoryId target);

/// Order atom root.target op threshold (Section 6 extension).
ExprPtr MakeOrderAtom(CategoryId root, CategoryId target, CmpOp op,
                      double threshold);

/// Parses `text` as a double; nullopt for non-numeric names. Used by
/// the order-atom semantics.
std::optional<double> ParseNumericName(const std::string& text);

ExprPtr MakeNot(ExprPtr e);
ExprPtr MakeAnd(std::vector<ExprPtr> children);
ExprPtr MakeOr(std::vector<ExprPtr> children);
ExprPtr MakeImplies(ExprPtr a, ExprPtr b);
ExprPtr MakeEquiv(ExprPtr a, ExprPtr b);
ExprPtr MakeXor(ExprPtr a, ExprPtr b);
ExprPtr MakeExactlyOne(std::vector<ExprPtr> children);

// ---------------------------------------------------------------------
// Constraints.

/// A dimension constraint: an expression whose atoms all share one root
/// category (Definition 3). `label` is a cosmetic tag used when
/// printing figure reproductions ("(a)", "(b)", ...).
struct DimensionConstraint {
  CategoryId root = kNoCategory;
  ExprPtr expr;
  std::string label;
};

/// Collects pointers to every atom node in `e` (pre-order).
void CollectAtoms(const ExprPtr& e, std::vector<const Expr*>* atoms);

/// The root category shared by the atoms of `e`; NotFound when `e`
/// contains no atoms, InvalidArgument when atoms disagree.
Result<CategoryId> InferRoot(const ExprPtr& e);

/// Wraps `e` as a DimensionConstraint, inferring and checking the root,
/// and verifying against `schema` that: the root is not All, category
/// ids are in range, and every path atom is a simple path of the schema.
Result<DimensionConstraint> MakeConstraint(const HierarchySchema& schema,
                                           ExprPtr e, std::string label = "");

/// As MakeConstraint but with an explicit root (needed when `e` has no
/// atoms, e.g. the constraint False).
Result<DimensionConstraint> MakeConstraintWithRoot(
    const HierarchySchema& schema, CategoryId root, ExprPtr e,
    std::string label = "");

/// Structural equality of expression trees.
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// True iff `c` is an *into* constraint (Section 5): syntactically a
/// single path atom of length one, `child_parent`. On success stores
/// the edge endpoints.
bool IsIntoConstraint(const DimensionConstraint& c, CategoryId* child,
                      CategoryId* parent);

/// All constants mentioned by equality atoms of `e` that target
/// category `c` (used to build the Const_ds map).
void CollectConstantsFor(const ExprPtr& e, CategoryId c,
                         std::vector<std::string>* constants);

}  // namespace olapdc

#endif  // OLAPDC_CONSTRAINT_EXPR_H_
