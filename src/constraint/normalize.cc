#include "constraint/normalize.h"

#include <utility>
#include <vector>

#include "graph/algorithms.h"

namespace olapdc {

namespace {

/// OR of path atoms for every simple path from `from` to `to`;
/// optionally only paths containing `via`. False when no path matches.
Result<ExprPtr> PathDisjunction(const HierarchySchema& schema,
                                CategoryId from, CategoryId to,
                                CategoryId via, size_t path_limit) {
  std::vector<ExprPtr> disjuncts;
  Status st = ForEachSimplePath(
      schema.graph(), from, to, path_limit,
      [&](const std::vector<int>& path) {
        if (path.size() < 2) return;  // trivial path (from == to)
        if (via != kNoCategory) {
          bool contains = false;
          for (int c : path) contains |= (c == via);
          if (!contains) return;
        }
        disjuncts.push_back(MakePathAtom(path));
      });
  OLAPDC_RETURN_NOT_OK(st);
  if (disjuncts.empty()) return MakeFalse();
  if (disjuncts.size() == 1) return disjuncts[0];
  return MakeOr(std::move(disjuncts));
}

Result<ExprPtr> ExpandComposed(const HierarchySchema& schema, const Expr& e,
                               size_t path_limit) {
  // c.ci: True when c == ci, else all simple paths c .. ci.
  if (e.root == e.target) return MakeTrue();
  return PathDisjunction(schema, e.root, e.target, kNoCategory, path_limit);
}

Result<ExprPtr> ExpandThrough(const HierarchySchema& schema, const Expr& e,
                              size_t path_limit) {
  const CategoryId c = e.root, ci = e.via, cj = e.target;
  // The five cases of Section 3.3.
  if (c == ci && ci == cj) return MakeTrue();
  if (c == cj && c != ci) return MakeFalse();
  if (c == ci && c != cj) {
    return ExpandShorthands(schema, MakeComposedAtom(c, cj), path_limit);
  }
  if (ci == cj && c != ci) {
    return ExpandShorthands(schema, MakeComposedAtom(c, ci), path_limit);
  }
  // All three distinct: paths from c to cj containing ci.
  return PathDisjunction(schema, c, cj, ci, path_limit);
}

}  // namespace

Result<ExprPtr> ExpandShorthands(const HierarchySchema& schema,
                                 const ExprPtr& e, size_t path_limit) {
  OLAPDC_CHECK(e != nullptr);
  switch (e->kind) {
    case ExprKind::kComposedAtom:
      return ExpandComposed(schema, *e, path_limit);
    case ExprKind::kThroughAtom:
      return ExpandThrough(schema, *e, path_limit);
    default:
      break;
  }
  if (e->children.empty()) return e;
  std::vector<ExprPtr> children;
  children.reserve(e->children.size());
  bool changed = false;
  for (const ExprPtr& child : e->children) {
    OLAPDC_ASSIGN_OR_RETURN(ExprPtr expanded,
                            ExpandShorthands(schema, child, path_limit));
    changed |= (expanded != child);
    children.push_back(std::move(expanded));
  }
  if (!changed) return e;
  auto copy = std::make_shared<Expr>(*e);
  copy->children = std::move(children);
  return ExprPtr(std::move(copy));
}

namespace {

ExprPtr SimplifyNary(ExprKind kind, std::vector<ExprPtr> children) {
  // AND: drop Trues, short-circuit on False. OR dually.
  const bool is_and = (kind == ExprKind::kAnd);
  std::vector<ExprPtr> kept;
  for (ExprPtr& c : children) {
    if (c->kind == (is_and ? ExprKind::kTrue : ExprKind::kFalse)) continue;
    if (c->kind == (is_and ? ExprKind::kFalse : ExprKind::kTrue)) {
      return is_and ? MakeFalse() : MakeTrue();
    }
    kept.push_back(std::move(c));
  }
  if (kept.empty()) return is_and ? MakeTrue() : MakeFalse();
  if (kept.size() == 1) return kept[0];
  return is_and ? MakeAnd(std::move(kept)) : MakeOr(std::move(kept));
}

ExprPtr SimplifyExactlyOne(std::vector<ExprPtr> children) {
  int known_true = 0;
  std::vector<ExprPtr> unknown;
  for (ExprPtr& c : children) {
    if (c->kind == ExprKind::kTrue) {
      ++known_true;
    } else if (c->kind != ExprKind::kFalse) {
      unknown.push_back(std::move(c));
    }
  }
  if (known_true >= 2) return MakeFalse();
  if (known_true == 1) {
    // Exactly one already true: all remaining operands must be false.
    std::vector<ExprPtr> negs;
    negs.reserve(unknown.size());
    for (ExprPtr& u : unknown) negs.push_back(MakeNot(std::move(u)));
    return SimplifyNary(ExprKind::kAnd, std::move(negs));
  }
  if (unknown.empty()) return MakeFalse();
  if (unknown.size() == 1) return unknown[0];
  return MakeExactlyOne(std::move(unknown));
}

}  // namespace

ExprPtr Simplify(const ExprPtr& e) {
  OLAPDC_CHECK(e != nullptr);
  if (e->IsAtom() || e->IsLiteralTruth()) return e;

  std::vector<ExprPtr> children;
  children.reserve(e->children.size());
  for (const ExprPtr& child : e->children) {
    children.push_back(Simplify(child));
  }

  switch (e->kind) {
    case ExprKind::kNot: {
      const ExprPtr& a = children[0];
      if (a->kind == ExprKind::kTrue) return MakeFalse();
      if (a->kind == ExprKind::kFalse) return MakeTrue();
      if (a->kind == ExprKind::kNot) return a->children[0];
      return MakeNot(a);
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
      return SimplifyNary(e->kind, std::move(children));
    case ExprKind::kImplies: {
      ExprPtr a = children[0], b = children[1];
      if (a->kind == ExprKind::kFalse || b->kind == ExprKind::kTrue) {
        return MakeTrue();
      }
      if (a->kind == ExprKind::kTrue) return b;
      if (b->kind == ExprKind::kFalse) return Simplify(MakeNot(a));
      return MakeImplies(std::move(a), std::move(b));
    }
    case ExprKind::kEquiv: {
      ExprPtr a = children[0], b = children[1];
      if (a->kind == ExprKind::kTrue) return b;
      if (b->kind == ExprKind::kTrue) return a;
      if (a->kind == ExprKind::kFalse) return Simplify(MakeNot(b));
      if (b->kind == ExprKind::kFalse) return Simplify(MakeNot(a));
      return MakeEquiv(std::move(a), std::move(b));
    }
    case ExprKind::kXor: {
      ExprPtr a = children[0], b = children[1];
      if (a->kind == ExprKind::kFalse) return b;
      if (b->kind == ExprKind::kFalse) return a;
      if (a->kind == ExprKind::kTrue) return Simplify(MakeNot(b));
      if (b->kind == ExprKind::kTrue) return Simplify(MakeNot(a));
      return MakeXor(std::move(a), std::move(b));
    }
    case ExprKind::kExactlyOne:
      return SimplifyExactlyOne(std::move(children));
    default:
      break;
  }
  // Unreachable for well-formed trees (atoms/literals have no children).
  auto copy = std::make_shared<Expr>(*e);
  copy->children = std::move(children);
  return copy;
}

}  // namespace olapdc
