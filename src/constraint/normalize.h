// Normalization of dimension constraints:
//  - ExpandShorthands resolves composed atoms `c.ci` and through atoms
//    `c.ci.cj` into disjunctions of plain path atoms against a concrete
//    hierarchy schema (Sections 3.1 and 3.3). After expansion an
//    expression mentions only path atoms and equality atoms, the form
//    the DIMSAT circle operator consumes.
//  - Simplify performs truth-constant folding (needed both to decide
//    circled constraint sets quickly and to keep figure output tidy).

#ifndef OLAPDC_CONSTRAINT_NORMALIZE_H_
#define OLAPDC_CONSTRAINT_NORMALIZE_H_

#include <cstddef>

#include "common/result.h"
#include "constraint/expr.h"
#include "dim/hierarchy_schema.h"

namespace olapdc {

/// Replaces every composed atom and through atom in `e` by its
/// definition over `schema`:
///   c.ci       -> True if c == ci, else OR of all simple paths c..ci
///                 (False if none exist);
///   c.ci.cj    -> the five-case expansion of Section 3.3.
/// `path_limit` bounds the number of simple paths enumerated per atom;
/// exceeding it yields ResourceExhausted.
Result<ExprPtr> ExpandShorthands(const HierarchySchema& schema,
                                 const ExprPtr& e, size_t path_limit = 1 << 20);

/// Folds truth constants through connectives:
///   !true -> false;  AND/OR absorb/short-circuit;  a -> true  ==  true;
///   one(true, x, y) -> !x & !y;  one() -> false;  etc.
/// Does not reorder or otherwise rewrite non-constant operands, so the
/// result is stable for printing.
ExprPtr Simplify(const ExprPtr& e);

/// True iff e is the literal True (after no further simplification).
inline bool IsTrueLiteral(const ExprPtr& e) {
  return e->kind == ExprKind::kTrue;
}
/// True iff e is the literal False.
inline bool IsFalseLiteral(const ExprPtr& e) {
  return e->kind == ExprKind::kFalse;
}

}  // namespace olapdc

#endif  // OLAPDC_CONSTRAINT_NORMALIZE_H_
