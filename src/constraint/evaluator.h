// Model checking of dimension constraints over dimension instances —
// the FOL semantics S(alpha) of Definition 4. Thanks to conditions
// C2/C6 a member has at most one ancestor per category, so every atom
// evaluates by deterministic ancestor lookups.

#ifndef OLAPDC_CONSTRAINT_EVALUATOR_H_
#define OLAPDC_CONSTRAINT_EVALUATOR_H_

#include <vector>

#include "constraint/expr.h"
#include "dim/dimension_instance.h"

namespace olapdc {

/// Whether member `x` of instance `d` satisfies S(e) (x must belong to
/// the root category of e's atoms for the result to be meaningful, but
/// any member is accepted).
bool EvalForMember(const DimensionInstance& d, const Expr& e, MemberId x);

/// Whether `d` satisfies the constraint: S(alpha) holds for every
/// member of the root category (Definition 4; vacuously true when the
/// category is empty).
bool Satisfies(const DimensionInstance& d, const DimensionConstraint& c);

/// Whether `d` satisfies every constraint in `sigma`.
bool SatisfiesAll(const DimensionInstance& d,
                  const std::vector<DimensionConstraint>& sigma);

/// The members of the root category that violate the constraint
/// (diagnostic companion of Satisfies).
std::vector<MemberId> ViolatingMembers(const DimensionInstance& d,
                                       const DimensionConstraint& c);

}  // namespace olapdc

#endif  // OLAPDC_CONSTRAINT_EVALUATOR_H_
