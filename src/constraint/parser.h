// Text syntax for dimension constraints.
//
// Grammar (ASCII; see printer.h for the paper-style output notation):
//
//   expr     := equiv
//   equiv    := impl  ( ('<->' | '<=>') impl )*
//   impl     := xor   ( ('->' | '=>') impl )?          (right assoc)
//   xor      := or    ( '^' or )*
//   or       := and   ( '|' and )*
//   and      := unary ( '&' unary )*
//   unary    := '!' unary | primary
//   primary  := 'true' | 'false'
//             | 'one' '(' expr (',' expr)* ')'
//             | '(' expr ')'
//             | atom
//   atom     := IDENT ('/' IDENT)+                      path atom
//             | IDENT '.' IDENT '.' IDENT               through atom
//             | IDENT '.' IDENT '=' value               equality atom
//             | IDENT '.' IDENT                         composed atom
//             | IDENT '=' value                         equality (c ~ k)
//   value    := '...'-quoted | "..."-quoted | IDENT | NUMBER
//
// Category identifiers are [A-Za-z_][A-Za-z0-9_]* and are resolved
// against the hierarchy schema at parse time.
//
// Examples over the paper's locationSch:
//   Store/City
//   Store.SaleRegion
//   City = 'Washington' <-> City/Country
//   State.Country = 'Mexico' | State.Country = 'USA'
//   one(Store.State.Country, Store.Province.Country)

#ifndef OLAPDC_CONSTRAINT_PARSER_H_
#define OLAPDC_CONSTRAINT_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "constraint/expr.h"
#include "dim/hierarchy_schema.h"

namespace olapdc {

/// Parses `text` into an expression over `schema`.
Result<ExprPtr> ParseExpr(const HierarchySchema& schema,
                          std::string_view text);

/// Parses `text` and wraps it as a validated DimensionConstraint (root
/// inferred from the atoms). `label` tags the constraint for printing.
Result<DimensionConstraint> ParseConstraint(const HierarchySchema& schema,
                                            std::string_view text,
                                            std::string label = "");

/// As ParseConstraint but with an explicit root category, required when
/// `text` contains no atoms (e.g. the constraint "false").
Result<DimensionConstraint> ParseConstraintWithRoot(
    const HierarchySchema& schema, std::string_view root,
    std::string_view text, std::string label = "");

}  // namespace olapdc

#endif  // OLAPDC_CONSTRAINT_PARSER_H_
