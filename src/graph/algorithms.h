// Graph algorithms used throughout olapdc: reachability, transitive
// closure, cycle detection, shortcut detection (the paper's Definition
// of shortcut), simple-path enumeration (used to expand composed path
// atoms), and topological sort.

#ifndef OLAPDC_GRAPH_ALGORITHMS_H_
#define OLAPDC_GRAPH_ALGORITHMS_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "common/status.h"
#include "graph/digraph.h"

namespace olapdc {

/// The set of nodes reachable from `start` by following edges forward.
/// Includes `start` itself (reflexive-transitive closure of one node).
DynamicBitset ReachableFrom(const Digraph& g, int start);

/// The set of nodes from which `target` is reachable. Includes `target`.
DynamicBitset ReachesTo(const Digraph& g, int target);

/// For every node u, the set of nodes reachable from u (including u).
std::vector<DynamicBitset> TransitiveClosure(const Digraph& g);

/// True iff g contains a directed cycle (self-loops count).
bool HasCycle(const Digraph& g);

/// A topological order of g, or InvalidArgument if g has a cycle.
Result<std::vector<int>> TopologicalSort(const Digraph& g);

/// True iff some simple path from u to v of length >= 2 exists in g.
/// Combined with an edge (u, v) this is exactly the paper's notion of a
/// *shortcut* (Section 2.1): "a pair of categories c and c' such that
/// c -> c' and there is a path from c to c' passing through some third
/// category".
bool HasSimplePathThroughThirdNode(const Digraph& g, int u, int v);

/// All shortcut edges of g: edges (u, v) for which a simple path from u
/// to v through a third node also exists.
std::vector<std::pair<int, int>> FindShortcuts(const Digraph& g);

/// Enumerates every simple path from `from` to `to` (node sequences
/// including both endpoints; a single-node path is produced when
/// from == to). Invokes `fn` once per path. Stops and returns
/// ResourceExhausted once more than `limit` paths have been produced.
Status ForEachSimplePath(const Digraph& g, int from, int to, size_t limit,
                         const std::function<void(const std::vector<int>&)>& fn);

/// Convenience wrapper collecting the paths of ForEachSimplePath.
Result<std::vector<std::vector<int>>> EnumerateSimplePaths(
    const Digraph& g, int from, int to, size_t limit = 1 << 20);

/// True iff `nodes` (a node sequence) is a simple path in g: all nodes
/// distinct and consecutive pairs joined by edges. A single node is a
/// (trivial) simple path.
bool IsSimplePath(const Digraph& g, const std::vector<int>& nodes);

}  // namespace olapdc

#endif  // OLAPDC_GRAPH_ALGORITHMS_H_
