#include "graph/algorithms.h"

#include <algorithm>

namespace olapdc {

namespace {

/// Generic BFS from `start` over a neighbor accessor.
template <typename NeighborFn>
DynamicBitset Bfs(int num_nodes, int start, NeighborFn&& neighbors) {
  DynamicBitset seen(num_nodes);
  std::vector<int> queue;
  seen.set(start);
  queue.push_back(start);
  while (!queue.empty()) {
    int u = queue.back();
    queue.pop_back();
    for (int v : neighbors(u)) {
      if (!seen.test(v)) {
        seen.set(v);
        queue.push_back(v);
      }
    }
  }
  return seen;
}

}  // namespace

DynamicBitset ReachableFrom(const Digraph& g, int start) {
  return Bfs(g.num_nodes(), start,
             [&](int u) -> const std::vector<int>& { return g.OutNeighbors(u); });
}

DynamicBitset ReachesTo(const Digraph& g, int target) {
  return Bfs(g.num_nodes(), target,
             [&](int u) -> const std::vector<int>& { return g.InNeighbors(u); });
}

std::vector<DynamicBitset> TransitiveClosure(const Digraph& g) {
  std::vector<DynamicBitset> closure;
  closure.reserve(g.num_nodes());
  for (int u = 0; u < g.num_nodes(); ++u) {
    closure.push_back(ReachableFrom(g, u));
  }
  return closure;
}

bool HasCycle(const Digraph& g) { return !TopologicalSort(g).ok(); }

Result<std::vector<int>> TopologicalSort(const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<int> in_degree(n, 0);
  for (int u = 0; u < n; ++u) in_degree[u] = g.InDegree(u);

  std::vector<int> order;
  order.reserve(n);
  std::vector<int> frontier;
  for (int u = 0; u < n; ++u) {
    if (in_degree[u] == 0) frontier.push_back(u);
  }
  while (!frontier.empty()) {
    int u = frontier.back();
    frontier.pop_back();
    order.push_back(u);
    for (int v : g.OutNeighbors(u)) {
      if (--in_degree[v] == 0) frontier.push_back(v);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument("graph has a directed cycle");
  }
  return order;
}

bool HasSimplePathThroughThirdNode(const Digraph& g, int u, int v) {
  // A simple path u -> w -> ... -> v with w != v never revisits u, so it
  // exists iff some out-neighbor w != v of u reaches v in g minus node u.
  // (Exact even in cyclic graphs: any walk from w to v avoiding u
  // contains a simple path from w to v avoiding u.)
  DynamicBitset blocked(g.num_nodes());
  blocked.set(u);
  for (int w : g.OutNeighbors(u)) {
    if (w == v || w == u) continue;
    // BFS from w avoiding u.
    DynamicBitset seen(g.num_nodes());
    std::vector<int> queue{w};
    seen.set(w);
    while (!queue.empty()) {
      int x = queue.back();
      queue.pop_back();
      if (x == v) return true;
      for (int y : g.OutNeighbors(x)) {
        if (y == u || seen.test(y)) continue;
        seen.set(y);
        queue.push_back(y);
      }
    }
  }
  return false;
}

std::vector<std::pair<int, int>> FindShortcuts(const Digraph& g) {
  std::vector<std::pair<int, int>> shortcuts;
  for (const auto& [u, v] : g.Edges()) {
    if (HasSimplePathThroughThirdNode(g, u, v)) shortcuts.emplace_back(u, v);
  }
  return shortcuts;
}

namespace {

struct PathEnumState {
  const Digraph* g;
  int to;
  size_t limit;
  size_t produced = 0;
  std::vector<int> stack;
  DynamicBitset on_stack;
  const std::function<void(const std::vector<int>&)>* fn;

  bool Dfs(int u) {
    stack.push_back(u);
    on_stack.set(u);
    if (u == to) {
      if (produced >= limit) return false;
      ++produced;
      (*fn)(stack);
    } else {
      for (int v : g->OutNeighbors(u)) {
        if (on_stack.test(v)) continue;
        if (!Dfs(v)) return false;
      }
    }
    on_stack.reset(u);
    stack.pop_back();
    return true;
  }
};

}  // namespace

Status ForEachSimplePath(
    const Digraph& g, int from, int to, size_t limit,
    const std::function<void(const std::vector<int>&)>& fn) {
  OLAPDC_CHECK(0 <= from && from < g.num_nodes());
  OLAPDC_CHECK(0 <= to && to < g.num_nodes());
  PathEnumState state{&g, to, limit, 0, {}, DynamicBitset(g.num_nodes()), &fn};
  if (!state.Dfs(from)) {
    return Status::ResourceExhausted(
        "simple-path enumeration exceeded limit");
  }
  return Status::OK();
}

Result<std::vector<std::vector<int>>> EnumerateSimplePaths(const Digraph& g,
                                                           int from, int to,
                                                           size_t limit) {
  std::vector<std::vector<int>> paths;
  OLAPDC_RETURN_NOT_OK(ForEachSimplePath(
      g, from, to, limit,
      [&](const std::vector<int>& path) { paths.push_back(path); }));
  return paths;
}

bool IsSimplePath(const Digraph& g, const std::vector<int>& nodes) {
  if (nodes.empty()) return false;
  DynamicBitset seen(g.num_nodes());
  for (size_t i = 0; i < nodes.size(); ++i) {
    int u = nodes[i];
    if (u < 0 || u >= g.num_nodes() || seen.test(u)) return false;
    seen.set(u);
    if (i + 1 < nodes.size() && !g.HasEdge(u, nodes[i + 1])) return false;
  }
  return true;
}

}  // namespace olapdc
