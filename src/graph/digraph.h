// Digraph: a simple directed graph over dense integer node ids
// [0, num_nodes). Hierarchy schemas, dimension instances (child/parent
// relations) and DIMSAT subhierarchies are all views over Digraphs.
//
// The graph is simple (no parallel edges, self-loops allowed only if the
// caller inserts them — hierarchy-schema validation rejects them) and
// keeps both forward and reverse adjacency for O(out-degree)/O(in-degree)
// traversal in either direction.

#ifndef OLAPDC_GRAPH_DIGRAPH_H_
#define OLAPDC_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitset.h"
#include "common/check.h"

namespace olapdc {

/// A directed graph with a fixed node count and dynamically added edges.
class Digraph {
 public:
  Digraph() : Digraph(0) {}

  /// Creates a graph with `num_nodes` nodes and no edges.
  explicit Digraph(int num_nodes)
      : out_(num_nodes), in_(num_nodes), num_edges_(0) {
    OLAPDC_CHECK(num_nodes >= 0);
  }

  int num_nodes() const { return static_cast<int>(out_.size()); }
  int num_edges() const { return num_edges_; }

  /// Adds edge u -> v. Duplicate insertions are ignored.
  void AddEdge(int u, int v);

  bool HasEdge(int u, int v) const;

  /// Nodes w with an edge u -> w, in insertion order.
  const std::vector<int>& OutNeighbors(int u) const {
    OLAPDC_DCHECK(0 <= u && u < num_nodes());
    return out_[u];
  }

  /// Nodes w with an edge w -> u, in insertion order.
  const std::vector<int>& InNeighbors(int u) const {
    OLAPDC_DCHECK(0 <= u && u < num_nodes());
    return in_[u];
  }

  int OutDegree(int u) const { return static_cast<int>(OutNeighbors(u).size()); }
  int InDegree(int u) const { return static_cast<int>(InNeighbors(u).size()); }

  /// All edges as (u, v) pairs, grouped by source.
  std::vector<std::pair<int, int>> Edges() const;

  bool operator==(const Digraph& o) const;

 private:
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  int num_edges_;
};

}  // namespace olapdc

#endif  // OLAPDC_GRAPH_DIGRAPH_H_
