#include "graph/digraph.h"

#include <algorithm>

namespace olapdc {

void Digraph::AddEdge(int u, int v) {
  OLAPDC_CHECK(0 <= u && u < num_nodes()) << "bad source node " << u;
  OLAPDC_CHECK(0 <= v && v < num_nodes()) << "bad target node " << v;
  if (HasEdge(u, v)) return;
  out_[u].push_back(v);
  in_[v].push_back(u);
  ++num_edges_;
}

bool Digraph::HasEdge(int u, int v) const {
  OLAPDC_DCHECK(0 <= u && u < num_nodes());
  OLAPDC_DCHECK(0 <= v && v < num_nodes());
  const auto& nbrs = out_[u];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::vector<std::pair<int, int>> Digraph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(num_edges_);
  for (int u = 0; u < num_nodes(); ++u) {
    for (int v : out_[u]) edges.emplace_back(u, v);
  }
  return edges;
}

bool Digraph::operator==(const Digraph& o) const {
  if (num_nodes() != o.num_nodes() || num_edges_ != o.num_edges_) {
    return false;
  }
  for (int u = 0; u < num_nodes(); ++u) {
    std::vector<int> a = out_[u];
    std::vector<int> b = o.out_[u];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  return true;
}

}  // namespace olapdc
