#include "graph/dot.h"

#include <vector>

namespace olapdc {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ToDot(const Digraph& g,
                  const std::function<std::string(int)>& label,
                  const DotOptions& options) {
  std::vector<std::string> labels(g.num_nodes());
  for (int u = 0; u < g.num_nodes(); ++u) labels[u] = label(u);

  std::string out = "digraph " + options.name + " {\n";
  if (options.bottom_up) out += "  rankdir=BT;\n";
  for (int u = 0; u < g.num_nodes(); ++u) {
    if (labels[u].empty()) continue;
    out += "  n" + std::to_string(u) + " [label=\"" + EscapeDot(labels[u]) +
           "\"];\n";
  }
  for (const auto& [u, v] : g.Edges()) {
    if (labels[u].empty() || labels[v].empty()) continue;
    out += "  n" + std::to_string(u) + " -> n" + std::to_string(v) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace olapdc
