// Graphviz DOT export for directed graphs. Used by the figure
// harnesses (hierarchy schemas, dimension instances, frozen dimensions)
// and by the heterogeneity report.

#ifndef OLAPDC_GRAPH_DOT_H_
#define OLAPDC_GRAPH_DOT_H_

#include <functional>
#include <string>

#include "graph/digraph.h"

namespace olapdc {

/// Options controlling DOT output.
struct DotOptions {
  /// Graph name after the `digraph` keyword.
  std::string name = "g";
  /// Draw edges bottom-up (rankdir=BT), the usual orientation for
  /// dimension hierarchies where All sits on top.
  bool bottom_up = true;
};

/// Renders g as a Graphviz digraph. `label(u)` supplies the display
/// label of node u; nodes with an empty label are omitted together with
/// their incident edges (used to render subgraphs of a schema).
std::string ToDot(const Digraph& g,
                  const std::function<std::string(int)>& label,
                  const DotOptions& options = {});

}  // namespace olapdc

#endif  // OLAPDC_GRAPH_DOT_H_
