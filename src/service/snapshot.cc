#include "service/snapshot.h"

#include <utility>

namespace olapdc::service {

namespace {

bool ParseHex128(std::string_view hex, Fingerprint128* out) {
  if (hex.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int i = 0; i < 32; ++i) {
    const char c = hex[static_cast<size_t>(i)];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    words[i / 16] = (words[i / 16] << 4) | nibble;
  }
  out->hi = words[0];
  out->lo = words[1];
  return true;
}

std::string_view NextLine(std::string_view* rest) {
  const size_t eol = rest->find('\n');
  std::string_view line;
  if (eol == std::string_view::npos) {
    line = *rest;
    *rest = std::string_view();
  } else {
    line = rest->substr(0, eol);
    *rest = rest->substr(eol + 1);
  }
  return line;
}

bool ParseU64(std::string_view digits, uint64_t* out) {
  if (digits.empty() || digits.size() > 19) return false;
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// "prefix N" -> N, or false.
bool ParseKeyedU64(std::string_view line, std::string_view key,
                   uint64_t* out) {
  if (line.substr(0, key.size()) != key) return false;
  return ParseU64(line.substr(key.size()), out);
}

}  // namespace

std::vector<std::string> BuildSnapshotRecords(uint64_t seq,
                                              const SchemaRegistry& registry,
                                              const ServiceCaches& caches,
                                              const SnapshotOptions& options) {
  std::vector<std::string> records;
  records.reserve(4);

  std::string meta = "olapdc-snapshot v1\n";
  meta += "seq " + std::to_string(seq) + "\n";
  meta +=
      "nogood_entries " + std::to_string(caches.NoGoodEntryCount()) + "\n";
  records.push_back(std::move(meta));

  std::string epochs = "section epochs\n";
  for (const auto& [name, epoch] : registry.Epochs()) {
    epochs += epoch.ToHex() + " " + name + "\n";
  }
  records.push_back(std::move(epochs));

  records.push_back("section nogoods\n" + caches.SerializeNoGoods());
  records.push_back("section responses\n" +
                    caches.SerializeResponses(options.max_response_entries));
  return records;
}

Result<SnapshotRestore> LoadSnapshotRecords(
    const std::vector<std::string>& records, ServiceCaches* caches) {
  if (records.empty()) {
    return Status::ParseError("snapshot has no meta record");
  }
  std::string_view meta = records[0];
  if (NextLine(&meta) != "olapdc-snapshot v1") {
    return Status::ParseError(
        "snapshot meta record must start with \"olapdc-snapshot v1\"");
  }
  SnapshotRestore restore;
  if (!ParseKeyedU64(NextLine(&meta), "seq ", &restore.seq) ||
      !ParseKeyedU64(NextLine(&meta), "nogood_entries ",
                     &restore.nogood_entries)) {
    return Status::ParseError("snapshot meta record malformed");
  }

  // Every record past the meta is an independent section; a torn tail
  // already removed trailing ones, and a malformed survivor is skipped
  // so one bad section never takes down the rest of recovery.
  for (size_t i = 1; i < records.size(); ++i) {
    std::string_view rest = records[i];
    const std::string_view header = NextLine(&rest);
    if (header == "section epochs") {
      std::vector<std::pair<std::string, Fingerprint128>> epochs;
      bool ok = true;
      while (!rest.empty()) {
        const std::string_view line = NextLine(&rest);
        if (line.empty()) continue;
        Fingerprint128 epoch;
        if (line.size() < 34 || line[32] != ' ' ||
            !ParseHex128(line.substr(0, 32), &epoch)) {
          ok = false;
          break;
        }
        epochs.emplace_back(std::string(line.substr(33)), epoch);
      }
      if (ok) {
        restore.epochs = std::move(epochs);
        restore.loaded_epochs = true;
      }
    } else if (header == "section nogoods") {
      if (caches->LoadNoGoods(rest).ok()) restore.loaded_nogoods = true;
    } else if (header == "section responses") {
      if (caches->LoadResponses(rest).ok()) restore.loaded_responses = true;
    }
    // Unknown section headers are forward compatibility: skipped.
  }
  return restore;
}

}  // namespace olapdc::service
