#include "service/service_caches.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace olapdc::service {

namespace {

/// Parses a 32-hex-digit fingerprint (the ToHex form).
bool ParseHex128(std::string_view hex, Fingerprint128* out) {
  if (hex.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int i = 0; i < 32; ++i) {
    const char c = hex[static_cast<size_t>(i)];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    words[i / 16] = (words[i / 16] << 4) | nibble;
  }
  out->hi = words[0];
  out->lo = words[1];
  return true;
}

std::string_view NextLine(std::string_view* rest) {
  const size_t eol = rest->find('\n');
  std::string_view line;
  if (eol == std::string_view::npos) {
    line = *rest;
    *rest = std::string_view();
  } else {
    line = rest->substr(0, eol);
    *rest = rest->substr(eol + 1);
  }
  return line;
}

}  // namespace

ServiceCaches::ServiceCaches(Options options)
    : options_(options),
      responses_({/*name=*/"constraint", options.num_shards,
                  options.memory_budget_bytes == 0
                      ? 0
                      : options.memory_budget_bytes / 2,
                  /*entry_overhead_bytes=*/160, &memory_}),
      closure_({options.memory_budget_bytes == 0
                    ? 0
                    : options.memory_budget_bytes / 4,
                options.num_shards, &memory_}) {
  if (options_.max_epoch_stores == 0) options_.max_epoch_stores = 1;
}

std::shared_ptr<NoGoodStore> ServiceCaches::NoGoodsFor(
    const Fingerprint128& epoch) {
  std::lock_guard<std::mutex> lock(epochs_mu_);
  for (auto it = epoch_stores_.begin(); it != epoch_stores_.end(); ++it) {
    if (it->first == epoch) {
      epoch_stores_.splice(epoch_stores_.begin(), epoch_stores_, it);
      return epoch_stores_.front().second;
    }
  }
  NoGoodStore::Options store_options;
  store_options.max_bytes =
      options_.memory_budget_bytes == 0
          ? 0
          : options_.memory_budget_bytes / 4 / options_.max_epoch_stores;
  store_options.memory = &memory_;
  epoch_stores_.emplace_front(
      epoch, std::make_shared<NoGoodStore>(store_options));
  while (epoch_stores_.size() > options_.max_epoch_stores) {
    epoch_stores_.pop_back();
  }
  return epoch_stores_.front().second;
}

CacheStatsSnapshot ServiceCaches::NoGoodStats() const {
  // Copy the store pointers out so the per-store shard locks are taken
  // without holding the epoch list lock.
  std::vector<std::shared_ptr<NoGoodStore>> stores;
  {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    stores.reserve(epoch_stores_.size());
    for (const auto& [epoch, store] : epoch_stores_) stores.push_back(store);
  }
  CacheStatsSnapshot total;
  for (const auto& store : stores) {
    const CacheStatsSnapshot s = store->Stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.bytes += s.bytes;
  }
  return total;
}

void ServiceCaches::PublishGauges() const {
  if (!obs::MetricsEnabled()) return;
  const CacheStatsSnapshot response = ResponseStats();
  const CacheStatsSnapshot closure = ClosureStats();
  const CacheStatsSnapshot nogood = NoGoodStats();
  obs::Gauge("olapdc.cache.constraint.entries",
             static_cast<int64_t>(response.entries));
  obs::Gauge("olapdc.cache.constraint.bytes",
             static_cast<int64_t>(response.bytes));
  obs::Gauge("olapdc.cache.closure.entries",
             static_cast<int64_t>(closure.entries));
  obs::Gauge("olapdc.cache.closure.bytes",
             static_cast<int64_t>(closure.bytes));
  obs::Gauge("olapdc.cache.nogood.entries",
             static_cast<int64_t>(nogood.entries));
  obs::Gauge("olapdc.cache.nogood.bytes",
             static_cast<int64_t>(nogood.bytes));
  memory_.PublishGauges();
  // Complete-inventory rule (docs/observability.md): the aggregate
  // counter names exist from the first scrape, even at zero.
  obs::Count("olapdc.cache.hits", 0);
  obs::Count("olapdc.cache.misses", 0);
  obs::Count("olapdc.cache.evictions", 0);
  obs::Count("olapdc.cache.invalidations", 0);
}

std::string ServiceCaches::SerializeNoGoods() const {
  std::vector<std::pair<Fingerprint128, std::shared_ptr<NoGoodStore>>> stores;
  {
    std::lock_guard<std::mutex> lock(epochs_mu_);
    stores.assign(epoch_stores_.begin(), epoch_stores_.end());
  }
  std::string out = "olapdc-nogood-stores v1\n";
  out += "stores " + std::to_string(stores.size()) + "\n";
  for (const auto& [epoch, store] : stores) {
    out += "epoch " + epoch.ToHex() + "\n";
    out += store->Serialize();
  }
  return out;
}

Status ServiceCaches::LoadNoGoods(std::string_view text) {
  std::string_view rest = text;
  if (NextLine(&rest) != "olapdc-nogood-stores v1") {
    return Status::ParseError(
        "no-good persistence must start with \"olapdc-nogood-stores v1\"");
  }
  std::string_view count_line = NextLine(&rest);
  constexpr std::string_view kStores = "stores ";
  if (count_line.substr(0, kStores.size()) != kStores ||
      count_line.size() == kStores.size()) {
    return Status::ParseError("no-good persistence missing \"stores K\"");
  }
  uint64_t expected = 0;
  for (const char c : count_line.substr(kStores.size())) {
    if (c < '0' || c > '9') {
      return Status::ParseError("malformed store count");
    }
    expected = expected * 10 + static_cast<uint64_t>(c - '0');
    if (expected > 4096) {
      return Status::ParseError("implausible store count");
    }
  }
  // Parse everything into uncapped staging stores first; the live
  // per-epoch stores are only touched after the whole text validated,
  // so adversarial input (truncated mid-record, mangled hex, an
  // oversized count header) can never half-load learned pruning.
  std::vector<std::pair<Fingerprint128, std::unique_ptr<NoGoodStore>>> staged;
  for (uint64_t i = 0; i < expected; ++i) {
    std::string_view epoch_line = NextLine(&rest);
    constexpr std::string_view kEpoch = "epoch ";
    Fingerprint128 epoch;
    if (epoch_line.substr(0, kEpoch.size()) != kEpoch ||
        !ParseHex128(epoch_line.substr(kEpoch.size()), &epoch)) {
      return Status::ParseError("malformed epoch at store " +
                                std::to_string(i));
    }
    NoGoodStore::Options staging_options;
    staging_options.max_bytes = 0;  // uncapped: staging must not evict
    staging_options.memory = nullptr;
    auto store = std::make_unique<NoGoodStore>(staging_options);
    size_t consumed = 0;
    OLAPDC_RETURN_NOT_OK(store->Load(rest, &consumed));
    rest = rest.substr(consumed);
    staged.emplace_back(epoch, std::move(store));
  }
  for (auto& [epoch, store] : staged) {
    const std::shared_ptr<NoGoodStore> target = NoGoodsFor(epoch);
    store->ForEach([&](const Fingerprint128& sig) { target->Record(sig); });
  }
  return Status::OK();
}

std::string ServiceCaches::SerializeResponses(size_t max_entries) const {
  std::vector<std::pair<std::string, std::string>> entries;
  responses_.ForEach([&](const std::string& key, const std::string& body) {
    if (entries.size() < max_entries) entries.emplace_back(key, body);
  });
  std::string out = "olapdc-responses v1\n";
  out += "entries " + std::to_string(entries.size()) + "\n";
  for (const auto& [key, body] : entries) {
    out += std::to_string(key.size()) + " " + std::to_string(body.size()) +
           "\n";
    out += key;
    out += body;
    out += '\n';
  }
  return out;
}

Status ServiceCaches::LoadResponses(std::string_view text) {
  std::string_view rest = text;
  if (NextLine(&rest) != "olapdc-responses v1") {
    return Status::ParseError(
        "response snapshot must start with \"olapdc-responses v1\"");
  }
  std::string_view count_line = NextLine(&rest);
  constexpr std::string_view kEntries = "entries ";
  if (count_line.substr(0, kEntries.size()) != kEntries ||
      count_line.size() == kEntries.size()) {
    return Status::ParseError("response snapshot missing \"entries N\"");
  }
  uint64_t expected = 0;
  for (const char c : count_line.substr(kEntries.size())) {
    if (c < '0' || c > '9') {
      return Status::ParseError("malformed response entry count");
    }
    expected = expected * 10 + static_cast<uint64_t>(c - '0');
    if (expected > (1u << 20)) {
      return Status::ParseError("implausible response entry count");
    }
  }
  auto parse_size = [](std::string_view digits, size_t* out) {
    if (digits.empty()) return false;
    uint64_t value = 0;
    for (const char c : digits) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<uint64_t>(c - '0');
      if (value > (64u << 20)) return false;  // one entry past 64MB: no
    }
    *out = static_cast<size_t>(value);
    return true;
  };
  std::vector<std::pair<std::string, std::string>> staged;
  staged.reserve(static_cast<size_t>(expected));
  for (uint64_t i = 0; i < expected; ++i) {
    const std::string_view sizes_line = NextLine(&rest);
    const size_t space = sizes_line.find(' ');
    size_t key_len = 0, body_len = 0;
    if (space == std::string_view::npos ||
        !parse_size(sizes_line.substr(0, space), &key_len) ||
        !parse_size(sizes_line.substr(space + 1), &body_len)) {
      return Status::ParseError("malformed response entry header at entry " +
                                std::to_string(i));
    }
    if (rest.size() < key_len + body_len + 1 ||
        rest[key_len + body_len] != '\n') {
      return Status::ParseError("truncated response entry " +
                                std::to_string(i));
    }
    staged.emplace_back(std::string(rest.substr(0, key_len)),
                        std::string(rest.substr(key_len, body_len)));
    rest = rest.substr(key_len + body_len + 1);
  }
  for (const auto& [key, body] : staged) InsertResponse(key, body);
  return Status::OK();
}

}  // namespace olapdc::service
