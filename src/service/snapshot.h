// Snapshot plane: olapdcd's periodic crash-durability checkpoint
// (docs/robustness.md "Crash durability & recovery").
//
// A snapshot is a durable file (io/durable_file.h) whose records are
// the `olapdc-snapshot v1` layout:
//
//   record 0 — meta:      "olapdc-snapshot v1\nseq N\nnogood_entries K\n"
//   record 1 — epochs:    "section epochs\n" + one "<hex32> <name>\n"
//                         line per registered schema
//   record 2 — no-goods:  "section nogoods\n" + SerializeNoGoods text
//   record 3 — responses: "section responses\n" + SerializeResponses
//                         text (the warm set, capped by the builder)
//
// Because each record is independently CRC-framed, a kill -9 (or a
// lost tail page) mid-write can only cost whole trailing records: a
// snapshot torn after the no-good record still restores the no-goods
// and simply starts the response cache cold. Sections are also loaded
// all-or-nothing internally (ServiceCaches::Load* are staged), so a
// bit flip that survives framing still can't half-load a layer.
//
// Recovery is the mirror: read with torn-tail truncation, verify the
// meta record, then apply every intact section. The per-section salvage
// means recovery never *fails* on a torn snapshot — the invariant the
// crash harness (chaos_campaign --crash) asserts over hundreds of
// kill points.

#ifndef OLAPDC_SERVICE_SNAPSHOT_H_
#define OLAPDC_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "service/schema_registry.h"
#include "service/service_caches.h"

namespace olapdc::service {

struct SnapshotOptions {
  /// Warm-set cap: how many response-cache entries to checkpoint.
  size_t max_response_entries = 4096;
};

/// Builds the `olapdc-snapshot v1` record sequence for
/// WriteDurableFile. `seq` is the monotone snapshot sequence number
/// (the daemon's, not the file's).
std::vector<std::string> BuildSnapshotRecords(
    uint64_t seq, const SchemaRegistry& registry, const ServiceCaches& caches,
    const SnapshotOptions& options = SnapshotOptions{});

struct SnapshotRestore {
  /// seq of the snapshot that was loaded.
  uint64_t seq = 0;
  /// No-good entry count recorded at snapshot time (meta record) —
  /// the crash harness's monotonicity witness.
  uint64_t nogood_entries = 0;
  /// Sections that were intact and applied.
  bool loaded_epochs = false;
  bool loaded_nogoods = false;
  bool loaded_responses = false;
  /// (name, epoch) pairs from the epochs section, for logging.
  std::vector<std::pair<std::string, Fingerprint128>> epochs;
  /// Salvage accounting copied from the durable read.
  uint64_t torn_tail_truncations = 0;
  uint64_t crc_drops = 0;
  uint64_t bytes = 0;
};

/// Applies the records of a recovered snapshot file to `caches`.
/// Trailing records lost to a torn tail lose only their own section;
/// a malformed *intact* section is skipped (counted in the caches'
/// ParseError) rather than failing recovery. Fails only if record 0
/// is missing or is not an `olapdc-snapshot v1` meta record.
Result<SnapshotRestore> LoadSnapshotRecords(
    const std::vector<std::string>& records, ServiceCaches* caches);

}  // namespace olapdc::service

#endif  // OLAPDC_SERVICE_SNAPSHOT_H_
