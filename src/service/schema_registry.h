// SchemaRegistry: the resident daemon's pre-parsed schema store.
//
// The whole point of a long-lived service (ROADMAP item 1) is that
// schemas and constraint theories are parsed once and kept hot; every
// request then reasons against an immutable snapshot. Entries are
// handed out as shared_ptr<const DimensionSchema>, which is the
// sticky-failure isolation mechanism: a request holds its own
// reference for its whole lifetime, so a concurrent re-registration
// (or a poisoned request dying mid-run) can never mutate or free the
// schema under it, and a failed registration never disturbs the entry
// it would have replaced.

#ifndef OLAPDC_SERVICE_SCHEMA_REGISTRY_H_
#define OLAPDC_SERVICE_SCHEMA_REGISTRY_H_

// The registry also owns the cache epoch model (ROADMAP item 2): every
// entry carries a 128-bit *content fingerprint* of its serialized
// schema + constraint theory. The epoch is part of every service-cache
// key, so replacing a schema invalidates all cached answers for it
// logically and atomically — entries under the old epoch can never hit
// again and age out through the LRU. Content addressing also means a
// replace with an identical theory keeps the caches warm (same Σ, same
// answers) and that persisted no-good stores survive a daemon restart
// soundly: they only ever re-attach to a byte-identical theory.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/cache_shard.h"
#include "common/status.h"
#include "core/schema.h"

namespace olapdc::service {

class SchemaRegistry {
 public:
  struct Snapshot {
    std::shared_ptr<const DimensionSchema> schema;
    /// Content fingerprint of the schema + Σ; Fingerprint128{} (zero)
    /// iff schema == nullptr.
    Fingerprint128 epoch;
  };

  SchemaRegistry() = default;
  SchemaRegistry(const SchemaRegistry&) = delete;
  SchemaRegistry& operator=(const SchemaRegistry&) = delete;

  /// Parses `schema_text` (the schema text format) and installs it
  /// under `name`, replacing any previous entry *only on success* — a
  /// parse failure (or budget expiry during the parse) leaves the
  /// registry exactly as it was. `budget` bounds the parse.
  Status Register(const std::string& name, std::string_view schema_text,
                  const Budget* budget = nullptr);

  /// Installs an already-built schema (workload generators, tests).
  void RegisterParsed(const std::string& name, DimensionSchema schema);

  /// The schema registered under `name`, or null. The returned
  /// reference stays valid for as long as the caller holds it,
  /// regardless of later re-registrations.
  std::shared_ptr<const DimensionSchema> Find(const std::string& name) const;

  /// Find() plus the entry's cache epoch — the lookup every cached
  /// request path uses, so schema and epoch are one consistent read.
  Snapshot FindEntry(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const;

  /// All (name, content epoch) pairs, one consistent read — what the
  /// snapshot plane checkpoints so a restart can tell which persisted
  /// cache state still matches a live theory.
  std::vector<std::pair<std::string, Fingerprint128>> Epochs() const;

  /// Registrations that *replaced* an entry with different content
  /// (i.e. changed its epoch and thereby invalidated every cached
  /// answer for that schema). Also counted as
  /// olapdc.cache.invalidations.
  uint64_t invalidations() const;

 private:
  void Install(const std::string& name,
               std::shared_ptr<const DimensionSchema> entry);

  mutable std::mutex mutex_;
  std::map<std::string, Snapshot> schemas_;
  uint64_t invalidations_ = 0;
};

}  // namespace olapdc::service

#endif  // OLAPDC_SERVICE_SCHEMA_REGISTRY_H_
