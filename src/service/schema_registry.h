// SchemaRegistry: the resident daemon's pre-parsed schema store.
//
// The whole point of a long-lived service (ROADMAP item 1) is that
// schemas and constraint theories are parsed once and kept hot; every
// request then reasons against an immutable snapshot. Entries are
// handed out as shared_ptr<const DimensionSchema>, which is the
// sticky-failure isolation mechanism: a request holds its own
// reference for its whole lifetime, so a concurrent re-registration
// (or a poisoned request dying mid-run) can never mutate or free the
// schema under it, and a failed registration never disturbs the entry
// it would have replaced.

#ifndef OLAPDC_SERVICE_SCHEMA_REGISTRY_H_
#define OLAPDC_SERVICE_SCHEMA_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "core/schema.h"

namespace olapdc::service {

class SchemaRegistry {
 public:
  SchemaRegistry() = default;
  SchemaRegistry(const SchemaRegistry&) = delete;
  SchemaRegistry& operator=(const SchemaRegistry&) = delete;

  /// Parses `schema_text` (the schema text format) and installs it
  /// under `name`, replacing any previous entry *only on success* — a
  /// parse failure (or budget expiry during the parse) leaves the
  /// registry exactly as it was. `budget` bounds the parse.
  Status Register(const std::string& name, std::string_view schema_text,
                  const Budget* budget = nullptr);

  /// Installs an already-built schema (workload generators, tests).
  void RegisterParsed(const std::string& name, DimensionSchema schema);

  /// The schema registered under `name`, or null. The returned
  /// reference stays valid for as long as the caller holds it,
  /// regardless of later re-registrations.
  std::shared_ptr<const DimensionSchema> Find(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const DimensionSchema>> schemas_;
};

}  // namespace olapdc::service

#endif  // OLAPDC_SERVICE_SCHEMA_REGISTRY_H_
