#include "service/schema_registry.h"

#include <utility>

#include "io/schema_io.h"

namespace olapdc::service {

Status SchemaRegistry::Register(const std::string& name,
                                std::string_view schema_text,
                                const Budget* budget) {
  // Parse entirely outside the lock: an adversarial schema burns its
  // own request budget, not the registry's availability.
  OLAPDC_ASSIGN_OR_RETURN(DimensionSchema parsed,
                          ParseSchemaText(schema_text, budget));
  auto entry = std::make_shared<const DimensionSchema>(std::move(parsed));
  std::lock_guard<std::mutex> lock(mutex_);
  schemas_[name] = std::move(entry);
  return Status::OK();
}

void SchemaRegistry::RegisterParsed(const std::string& name,
                                    DimensionSchema schema) {
  auto entry = std::make_shared<const DimensionSchema>(std::move(schema));
  std::lock_guard<std::mutex> lock(mutex_);
  schemas_[name] = std::move(entry);
}

std::shared_ptr<const DimensionSchema> SchemaRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = schemas_.find(name);
  return it == schemas_.end() ? nullptr : it->second;
}

std::vector<std::string> SchemaRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, schema] : schemas_) names.push_back(name);
  return names;
}

size_t SchemaRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return schemas_.size();
}

}  // namespace olapdc::service
