#include "service/schema_registry.h"

#include <utility>

#include "io/schema_io.h"
#include "obs/metrics.h"

namespace olapdc::service {

Status SchemaRegistry::Register(const std::string& name,
                                std::string_view schema_text,
                                const Budget* budget) {
  // Parse entirely outside the lock: an adversarial schema burns its
  // own request budget, not the registry's availability.
  OLAPDC_ASSIGN_OR_RETURN(DimensionSchema parsed,
                          ParseSchemaText(schema_text, budget));
  Install(name, std::make_shared<const DimensionSchema>(std::move(parsed)));
  return Status::OK();
}

void SchemaRegistry::RegisterParsed(const std::string& name,
                                    DimensionSchema schema) {
  Install(name, std::make_shared<const DimensionSchema>(std::move(schema)));
}

void SchemaRegistry::Install(const std::string& name,
                             std::shared_ptr<const DimensionSchema> entry) {
  // The epoch is the fingerprint of the *serialized* schema: content
  // addressing, computed outside the lock. Re-registering identical
  // content keeps the old epoch, so warm caches stay valid (same Σ ⇒
  // same answers); any semantic edit changes the serialization and
  // thereby atomically orphans every cached answer.
  Snapshot snapshot;
  snapshot.epoch = FingerprintBytes(SerializeSchema(*entry));
  snapshot.schema = std::move(entry);

  bool invalidated = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = schemas_.find(name);
    if (it != schemas_.end() && !(it->second.epoch == snapshot.epoch)) {
      ++invalidations_;
      invalidated = true;
    }
    schemas_[name] = std::move(snapshot);
  }
  if (invalidated && obs::MetricsEnabled()) {
    obs::Count("olapdc.cache.invalidations");
  }
}

std::shared_ptr<const DimensionSchema> SchemaRegistry::Find(
    const std::string& name) const {
  return FindEntry(name).schema;
}

SchemaRegistry::Snapshot SchemaRegistry::FindEntry(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = schemas_.find(name);
  return it == schemas_.end() ? Snapshot{} : it->second;
}

std::vector<std::string> SchemaRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, snapshot] : schemas_) names.push_back(name);
  return names;
}

std::vector<std::pair<std::string, Fingerprint128>> SchemaRegistry::Epochs()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Fingerprint128>> epochs;
  epochs.reserve(schemas_.size());
  for (const auto& [name, snapshot] : schemas_) {
    epochs.emplace_back(name, snapshot.epoch);
  }
  return epochs;
}

size_t SchemaRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return schemas_.size();
}

uint64_t SchemaRegistry::invalidations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}

}  // namespace olapdc::service
