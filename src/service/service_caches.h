// ServiceCaches: the cross-request cache plane of olapdcd (ROADMAP
// item 2). One instance owns the three layers, all keyed by the
// SchemaRegistry's (schema, Σ) content epoch:
//
//   layer a — the canonicalized constraint/response cache: the full
//             200 JSON body of a definitive answer, keyed by
//             op + epoch + canonical inputs, so an identical request
//             against an unchanged epoch is one hash lookup and zero
//             engine work.
//   layer b — per-epoch DIMSAT no-good stores (core/nogood.h):
//             learned barren-subtree signatures shared by every
//             request against the same epoch, so even *novel* queries
//             reuse the pruning earlier traffic paid for. The last few
//             epochs stay live; older ones age out with their stores.
//   layer c — the shared implication-closure cache
//             (core/answer_cache.h): canonical-key -> verdict, keyed
//             under an "e<epoch>/" scope. Survives response-cache
//             eviction (a verdict is ~100 bytes, a body ~300) and
//             feeds both DimService and any Reasoner given the scope.
//
// Invalidation is the registry's epoch model: a replaced theory gets a
// new content fingerprint, every key under the old epoch goes
// permanently cold, and the LRU reclaims the bytes. Nothing is ever
// served across epochs, including after a daemon restart (the no-good
// persistence format carries each store's epoch).
//
// All layers share one byte envelope, enforced per-layer by the
// ShardedCache LRU and *charged* to a track-only MemoryBudget so cache
// residency is visible on the olapdc.mem gauges next to request
// memory. Losing an entry is always safe — every layer is a pure
// memoization of deterministic engines.

#ifndef OLAPDC_SERVICE_SERVICE_CACHES_H_
#define OLAPDC_SERVICE_SERVICE_CACHES_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "common/cache_shard.h"
#include "common/memory_budget.h"
#include "common/status.h"
#include "core/answer_cache.h"
#include "core/nogood.h"

namespace olapdc::service {

class ServiceCaches {
 public:
  struct Options {
    /// Byte envelope across all layers: half to the response cache,
    /// a quarter to the closure cache, a quarter split across the
    /// live no-good stores. 0 disables byte caps (test/bench use).
    uint64_t memory_budget_bytes = 32ull << 20;
    size_t num_shards = 8;
    /// Live per-epoch no-good stores; least recently used epochs drop
    /// their stores (a replaced-then-restored theory restarts cold).
    size_t max_epoch_stores = 4;
  };

  ServiceCaches() : ServiceCaches(Options{}) {}
  explicit ServiceCaches(Options options);

  ServiceCaches(const ServiceCaches&) = delete;
  ServiceCaches& operator=(const ServiceCaches&) = delete;

  /// Layer a. Keys are op + epoch + canonical inputs; values are the
  /// response JSON body (no trailing newline, no "cached" marker — the
  /// serve path appends it).
  bool LookupResponse(const std::string& key, std::string* body) {
    return responses_.Lookup(key, body);
  }
  void InsertResponse(const std::string& key, const std::string& body) {
    responses_.Insert(key, body, key.size() + body.size());
  }
  /// Drops every layer-a entry (bench/test isolation of the closure
  /// layer); layers b and c are untouched.
  void ClearResponses() { responses_.Clear(); }

  /// Layer c. Callers scope keys with "e" + epoch.ToHex() + "/".
  AnswerCache& closure() { return closure_; }

  /// Layer b. The store for `epoch`, created on first use; refreshes
  /// the epoch's LRU position and drops the oldest store beyond
  /// max_epoch_stores. The returned shared_ptr keeps a store usable
  /// for a whole request even if its epoch is aged out concurrently.
  std::shared_ptr<NoGoodStore> NoGoodsFor(const Fingerprint128& epoch);

  /// Aggregate accounting (all layers; invalidations live on the
  /// SchemaRegistry, which owns the epochs).
  CacheStatsSnapshot ResponseStats() const { return responses_.Stats(); }
  CacheStatsSnapshot ClosureStats() const { return closure_.Stats(); }
  CacheStatsSnapshot NoGoodStats() const;

  /// Observability charge target shared by every layer (track-only:
  /// limit 0; enforcement is each layer's LRU byte cap).
  MemoryBudget& memory() { return memory_; }

  /// Publishes per-layer entry/byte gauges (olapdc.cache.*.entries /
  /// .bytes) and the olapdc.mem residency gauges. Called per request
  /// by DimService; cheap (a handful of uncontended shard locks).
  void PublishGauges() const;

  /// Persistence for warm restarts (`olapdcd --nogood-file` and the
  /// snapshot plane): `olapdc-nogood-stores v1` — each live store
  /// serialized with its epoch, so a reload only ever re-attaches
  /// learned pruning to the byte-identical theory it was learned
  /// against. LoadNoGoods is all-or-nothing: the text is parsed into
  /// staging stores first and committed only if every store parses,
  /// so truncated or corrupted input returns ParseError and loads
  /// nothing (tests/snapshot_test.cc's adversarial corpus).
  std::string SerializeNoGoods() const;
  Status LoadNoGoods(std::string_view text);

  /// Warm-set snapshot of layer a: up to `max_entries` response-cache
  /// entries as `olapdc-responses v1` text (length-prefixed key/body
  /// pairs — bodies are opaque bytes). Part of the olapdcd snapshot
  /// (service/snapshot.h); keys carry their epoch, so re-loading a
  /// stale snapshot is harmless (stale keys never hit).
  std::string SerializeResponses(size_t max_entries) const;
  /// Re-inserts a SerializeResponses snapshot. All-or-nothing like
  /// LoadNoGoods: malformed input returns ParseError, inserts nothing.
  Status LoadResponses(std::string_view text);

  /// Total entries across the live no-good stores — the crash
  /// harness's monotonicity counter.
  uint64_t NoGoodEntryCount() const { return NoGoodStats().entries; }

 private:
  Options options_;
  /// Track-only (limit 0): see class comment.
  MemoryBudget memory_{0};
  ShardedCache<std::string, std::string> responses_;
  AnswerCache closure_;

  mutable std::mutex epochs_mu_;
  /// Front = most recently used epoch.
  std::list<std::pair<Fingerprint128, std::shared_ptr<NoGoodStore>>>
      epoch_stores_;
};

}  // namespace olapdc::service

#endif  // OLAPDC_SERVICE_SERVICE_CACHES_H_
