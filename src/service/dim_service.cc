#include "service/dim_service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/status.h"
#include "constraint/normalize.h"
#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/checkpoint.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/summarizability.h"
#include "io/json_parse.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/service_caches.h"

namespace olapdc::service {

namespace {

using obs::HttpRequest;
using obs::HttpResponse;

constexpr char kJsonContentType[] = "application/json";

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kInvalidModel:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kResourceExhausted:
      return 413;
    case StatusCode::kUnavailable:
    case StatusCode::kCancelled:
      return 503;
    default:
      return 500;
  }
}

HttpResponse JsonResponse(int status, std::string body) {
  return HttpResponse{status, kJsonContentType, std::move(body) + "\n", {}};
}

HttpResponse ErrorResponse(const Status& status) {
  std::string body = "{\"error\": " + obs::JsonString(status.message()) +
                     ", \"code\": " +
                     obs::JsonString(StatusCodeToString(status.code())) + "}";
  return JsonResponse(HttpStatusForCode(status.code()), std::move(body));
}

/// Schema names travel back in responses, logs, and metrics, so refuse
/// byte garbage up front: control characters and invalid UTF-8 are a
/// 400, not a name.
bool ValidSchemaName(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  size_t i = 0;
  while (i < name.size()) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    if (c < 0x20 || c == 0x7F) return false;
    size_t continuation = 0;
    if (c < 0x80) {
      continuation = 0;
    } else if ((c & 0xE0) == 0xC0 && c >= 0xC2) {
      continuation = 1;
    } else if ((c & 0xF0) == 0xE0) {
      continuation = 2;
    } else if ((c & 0xF8) == 0xF0 && c <= 0xF4) {
      continuation = 3;
    } else {
      return false;  // stray continuation byte or overlong lead
    }
    for (size_t k = 1; k <= continuation; ++k) {
      if (i + k >= name.size() ||
          (static_cast<unsigned char>(name[i + k]) & 0xC0) != 0x80) {
        return false;
      }
    }
    i += continuation + 1;
  }
  return true;
}

std::string BoolJson(bool value) { return value ? "true" : "false"; }

/// Renders the shared tail of an engine response: either a definitive
/// answer or the budget-expiry degradation (status name, optional
/// checkpoint).
struct EngineTail {
  bool definitive = false;
  std::string json;  // fragment starting with ", ..."
  bool checkpointed = false;
};

EngineTail RenderBudgetTail(const Status& status,
                            const DimsatCheckpoint* checkpoint) {
  EngineTail tail;
  tail.json = ", \"definitive\": false, \"status\": " +
              obs::JsonString(StatusCodeToString(status.code()));
  if (checkpoint != nullptr && !checkpoint->empty()) {
    tail.json +=
        ", \"checkpoint\": " + obs::JsonString(checkpoint->Serialize());
    tail.checkpointed = true;
  }
  return tail;
}

/// The prefix every cache key carries: a theory replacement mints a new
/// epoch, so every key under the old one goes permanently cold.
std::string EpochScope(const Fingerprint128& epoch) {
  return "e" + epoch.ToHex() + "/";
}

/// Marks a cache-served body on its way out. Stored bodies never carry
/// the marker, so a hit re-served later stays byte-identical.
HttpResponse CachedResponse(std::string body, const char* layer) {
  if (!body.empty() && body.back() == '}') {
    body.pop_back();
    body += ", \"cached\": true, \"cache_layer\": \"";
    body += layer;
    body += "\"}";
  }
  if (obs::MetricsEnabled()) obs::Count("olapdc.service.cache_served");
  return JsonResponse(200, std::move(body));
}

}  // namespace

void DimService::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  if (options_.gate != nullptr) options_.gate->BeginDrain();
  if (obs::MetricsEnabled()) obs::Gauge("olapdc.service.draining", 1);
}

void DimService::CancelInFlight() { drain_cancel_.RequestCancel(); }

HttpResponse DimService::HandleRequest(const HttpRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) obs::Count("olapdc.service.requests");

  HttpResponse response = Route(request);

  if (response.status == 503) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) obs::Count("olapdc.service.shed");
  } else if (response.status >= 400) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) obs::Count("olapdc.service.errors");
  } else {
    ok_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) obs::Count("olapdc.service.ok");
  }
  if (obs::MetricsEnabled()) {
    obs::LatencyUs("olapdc.service.latency_us",
                   std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count());
    if (options_.caches != nullptr) options_.caches->PublishGauges();
  }
  return response;
}

HttpResponse DimService::Route(const HttpRequest& request) {
  if (request.method != "POST") {
    return HttpResponse{405, kJsonContentType,
                        "{\"error\": \"request plane endpoints are "
                        "POST-only\"}\n",
                        {}};
  }
  const bool known_path =
      request.path == "/v1/check" || request.path == "/v1/implies" ||
      request.path == "/v1/summarizable" || request.path == "/v1/batch" ||
      request.path == "/v1/schemas";
  if (!known_path) {
    return ErrorResponse(Status::NotFound("no such endpoint: " +
                                          request.path));
  }

  // Admission before any parsing: a shed request must cost microseconds.
  exec::AdmissionGate::Ticket ticket(options_.gate);
  if (!ticket.admitted()) {
    const int64_t retry_ms = exec::RetryAfterMsFromStatus(ticket.status());
    HttpResponse response = ErrorResponse(ticket.status());
    // HTTP Retry-After is whole seconds; the JSON error body carries
    // the precise ms hint inside the message.
    const int64_t retry_s = retry_ms <= 0 ? 1 : (retry_ms + 999) / 1000;
    response.headers.emplace_back("Retry-After", std::to_string(retry_s));
    return response;
  }

  JsonValue body;
  {
    std::string parse_error;
    if (!ParseJsonText(request.body, &body, &parse_error)) {
      if (obs::MetricsEnabled()) obs::Count("olapdc.service.bad_json");
      return ErrorResponse(Status::ParseError(parse_error));
    }
  }
  if (!body.is_object()) {
    if (obs::MetricsEnabled()) obs::Count("olapdc.service.bad_json");
    return ErrorResponse(
        Status::InvalidArgument("request body must be a JSON object"));
  }

  auto deadline_ms = body.OptionalInt("deadline_ms",
                                      options_.default_deadline_ms);
  if (!deadline_ms.ok()) return ErrorResponse(deadline_ms.status());
  int64_t clamped_ms = *deadline_ms;
  if (clamped_ms < 1) clamped_ms = 1;
  if (clamped_ms > options_.max_deadline_ms) {
    clamped_ms = options_.max_deadline_ms;
  }

  MemoryBudget memory(options_.memory_budget_bytes);
  Budget budget = Budget::WithDeadlineMs(clamped_ms);
  budget.SetCancellation(drain_cancel_.token());
  budget.SetMemory(&memory);

  if (request.path == "/v1/check") return DoCheck(body, budget);
  if (request.path == "/v1/implies") return DoImplies(body, budget);
  if (request.path == "/v1/summarizable") {
    return DoSummarizable(body, budget);
  }
  if (request.path == "/v1/batch") return DoBatch(body, budget);
  return DoRegisterSchema(body, budget);
}

namespace {

/// Shared per-op context resolved from a request body.
struct OpContext {
  std::shared_ptr<const DimensionSchema> schema;
  std::string schema_name;
  /// Content epoch of the snapshot — the cache-key scope for this op.
  Fingerprint128 epoch;
  int threads = 1;
};

Result<OpContext> ResolveOp(const SchemaRegistry& registry,
                            const JsonValue& body, int max_threads) {
  OpContext ctx;
  OLAPDC_ASSIGN_OR_RETURN(ctx.schema_name, body.RequireString("schema"));
  if (!ValidSchemaName(ctx.schema_name)) {
    return Status::InvalidArgument(
        "field \"schema\" must be non-empty, valid UTF-8 without control "
        "characters, and at most 128 bytes");
  }
  SchemaRegistry::Snapshot snapshot = registry.FindEntry(ctx.schema_name);
  ctx.schema = snapshot.schema;
  ctx.epoch = snapshot.epoch;
  if (ctx.schema == nullptr) {
    return Status::NotFound("schema \"" + ctx.schema_name +
                            "\" is not registered");
  }
  OLAPDC_ASSIGN_OR_RETURN(int64_t threads, body.OptionalInt("threads", 1));
  if (threads < 1) threads = 1;
  if (threads > max_threads) threads = max_threads;
  ctx.threads = static_cast<int>(threads);
  return ctx;
}

DimsatOptions EngineOptions(const DimService::Options& options,
                            const Budget& budget, int threads) {
  DimsatOptions dopt;
  dopt.budget = &budget;
  dopt.max_expand_calls = options.max_expand_calls;
  dopt.num_threads = threads;
  return dopt;
}

}  // namespace

HttpResponse DimService::DoCheck(const JsonValue& body, const Budget& budget) {
  auto ctx = ResolveOp(*options_.registry, body, options_.max_threads);
  if (!ctx.ok()) return ErrorResponse(ctx.status());
  auto category = body.RequireString("category");
  if (!category.ok()) return ErrorResponse(category.status());
  auto root = ctx->schema->hierarchy().CategoryIdOf(*category);
  if (!root.ok()) return ErrorResponse(root.status());
  auto resume = body.OptionalString("resume", "");
  if (!resume.ok()) return ErrorResponse(resume.status());

  // Cache read path: response layer first (one hash lookup), then the
  // closure layer (verdict known, body re-synthesized). Resume requests
  // bypass reads — the client explicitly asked to continue a search —
  // but still warm the no-good layer below.
  ServiceCaches* const caches = options_.caches;
  const bool cacheable = caches != nullptr && resume->empty();
  std::string closure_key, response_key;
  if (cacheable) {
    closure_key = EpochScope(ctx->epoch) + "s/" + std::to_string(*root);
    response_key = "check/" + closure_key;
    std::string cached_body;
    if (caches->LookupResponse(response_key, &cached_body)) {
      return CachedResponse(std::move(cached_body), "response");
    }
    bool satisfiable = false;
    if (caches->closure().Lookup(closure_key, &satisfiable)) {
      std::string out = "{\"schema\": " + obs::JsonString(ctx->schema_name) +
                        ", \"category\": " + obs::JsonString(*category) +
                        ", \"definitive\": true, \"satisfiable\": " +
                        BoolJson(satisfiable) + ", \"expand_calls\": 0}";
      return CachedResponse(std::move(out), "closure");
    }
  }

  DimsatOptions dopt = EngineOptions(options_, budget, ctx->threads);
  std::shared_ptr<NoGoodStore> nogoods;
  if (caches != nullptr) {
    // Keep the store alive for the whole run even if its epoch is aged
    // out of the LRU concurrently.
    nogoods = caches->NoGoodsFor(ctx->epoch);
    dopt.nogoods = nogoods.get();
  }
  DimsatCheckpoint captured;
  DimsatResult result;
  if (!resume->empty()) {
    auto parsed = ParseCheckpointFor(*ctx->schema, *root, *resume);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    dopt.checkpoint = &captured;
    dopt.num_threads = 1;  // resume is a property of one DFS
    result = ResumeDimsat(*ctx->schema, *root, dopt, std::move(*parsed));
  } else {
    if (ctx->threads <= 1) dopt.checkpoint = &captured;
    result = RunDimsat(*ctx->schema, *root, dopt);
  }

  std::string out = "{\"schema\": " + obs::JsonString(ctx->schema_name) +
                    ", \"category\": " + obs::JsonString(*category);
  if (result.status.ok()) {
    out += ", \"definitive\": true, \"satisfiable\": " +
           BoolJson(result.satisfiable);
    if (cacheable) caches->closure().Insert(closure_key, result.satisfiable);
  } else if (IsBudgetError(result.status)) {
    EngineTail tail = RenderBudgetTail(result.status, &captured);
    out += tail.json;
    if (tail.checkpointed) {
      checkpointed_.fetch_add(1, std::memory_order_relaxed);
      if (obs::MetricsEnabled()) obs::Count("olapdc.service.checkpointed");
    }
  } else {
    return ErrorResponse(result.status);
  }
  out += ", \"expand_calls\": " +
         std::to_string(result.stats.expand_calls) + "}";
  // Only definitive answers are cached: a budget expiry is a property
  // of this request's budget, not of the theory.
  if (cacheable && result.status.ok()) {
    caches->InsertResponse(response_key, out);
  }
  return JsonResponse(200, std::move(out));
}

HttpResponse DimService::DoImplies(const JsonValue& body,
                                   const Budget& budget) {
  auto ctx = ResolveOp(*options_.registry, body, options_.max_threads);
  if (!ctx.ok()) return ErrorResponse(ctx.status());
  auto constraint_text = body.RequireString("constraint");
  if (!constraint_text.ok()) return ErrorResponse(constraint_text.status());
  auto alpha = ParseConstraint(ctx->schema->hierarchy(), *constraint_text);
  if (!alpha.ok()) return ErrorResponse(alpha.status());

  // The closure layer keys on the *canonical* form (shorthands
  // expanded to plain path atoms, constants folded) so textually
  // different spellings of one constraint share a verdict. The
  // response layer keys on the raw text, because the body echoes it.
  // An expansion failure (path_limit) just runs this request uncached.
  ServiceCaches* const caches = options_.caches;
  std::string closure_key, response_key;
  uint64_t theory_salt = 0;
  bool cacheable = false;
  if (caches != nullptr) {
    auto expanded = ExpandShorthands(ctx->schema->hierarchy(), alpha->expr);
    if (expanded.ok()) {
      const std::string scope = EpochScope(ctx->epoch);
      const std::string canonical =
          std::to_string(alpha->root) + ":" +
          ExprToString(ctx->schema->hierarchy(), Simplify(*expanded));
      closure_key = scope + "i/" + canonical;
      response_key =
          "implies/" + scope + FingerprintBytes(*constraint_text).ToHex();
      theory_salt = FingerprintBytes(canonical).lo;
      cacheable = true;
      std::string cached_body;
      if (caches->LookupResponse(response_key, &cached_body)) {
        return CachedResponse(std::move(cached_body), "response");
      }
      bool implied = false;
      if (caches->closure().Lookup(closure_key, &implied)) {
        // Verdict-only synthesis: no "counterexample" field (the
        // closure layer keeps verdicts, not witnesses).
        std::string out =
            "{\"schema\": " + obs::JsonString(ctx->schema_name) +
            ", \"constraint\": " + obs::JsonString(*constraint_text) +
            ", \"definitive\": true, \"implied\": " + BoolJson(implied) +
            ", \"expand_calls\": 0}";
        return CachedResponse(std::move(out), "closure");
      }
    }
  }

  DimsatOptions dopt = EngineOptions(options_, budget, ctx->threads);
  std::shared_ptr<NoGoodStore> nogoods;
  if (cacheable) {
    // Implies() searches Σ ∪ {¬α}, a different theory than /v1/check's
    // plain Σ — the salt keeps their no-good signatures apart while
    // letting repeats of the *same* constraint share learned pruning.
    nogoods = caches->NoGoodsFor(ctx->epoch);
    dopt.nogoods = nogoods.get();
    dopt.nogood_salt = theory_salt;
  }
  auto result = Implies(*ctx->schema, *alpha, dopt);
  if (!result.ok()) return ErrorResponse(result.status());

  std::string out = "{\"schema\": " + obs::JsonString(ctx->schema_name) +
                    ", \"constraint\": " + obs::JsonString(*constraint_text);
  if (result->status.ok()) {
    out += ", \"definitive\": true, \"implied\": " + BoolJson(result->implied);
    out += ", \"counterexample\": " +
           BoolJson(result->counterexample.has_value());
    if (cacheable) caches->closure().Insert(closure_key, result->implied);
  } else if (IsBudgetError(result->status)) {
    out += RenderBudgetTail(result->status, nullptr).json;
  } else {
    return ErrorResponse(result->status);
  }
  out += ", \"expand_calls\": " +
         std::to_string(result->stats.expand_calls) + "}";
  if (cacheable && result->status.ok()) {
    caches->InsertResponse(response_key, out);
  }
  return JsonResponse(200, std::move(out));
}

HttpResponse DimService::DoSummarizable(const JsonValue& body,
                                        const Budget& budget) {
  auto ctx = ResolveOp(*options_.registry, body, options_.max_threads);
  if (!ctx.ok()) return ErrorResponse(ctx.status());
  auto category = body.RequireString("category");
  if (!category.ok()) return ErrorResponse(category.status());
  auto root = ctx->schema->hierarchy().CategoryIdOf(*category);
  if (!root.ok()) return ErrorResponse(root.status());
  auto sources = body.RequireArray("sources");
  if (!sources.ok()) return ErrorResponse(sources.status());
  std::vector<CategoryId> s;
  s.reserve((*sources)->array.size());
  for (const JsonValue& item : (*sources)->array) {
    if (!item.is_string()) {
      return ErrorResponse(Status::InvalidArgument(
          "field \"sources\" must be an array of category names"));
    }
    auto id = ctx->schema->hierarchy().CategoryIdOf(item.string_value);
    if (!id.ok()) return ErrorResponse(id.status());
    s.push_back(*id);
  }

  // Canonical form: target id plus the source ids sorted (ExactlyOne
  // over the through-atoms is order-independent, so sorting is
  // semantics-preserving; duplicates are kept — one(x, x) != one(x)).
  ServiceCaches* const caches = options_.caches;
  std::string closure_key, response_key;
  uint64_t theory_salt = 0;
  const bool cacheable = caches != nullptr;
  if (cacheable) {
    std::vector<CategoryId> sorted_sources = s;
    std::sort(sorted_sources.begin(), sorted_sources.end());
    std::string canonical = std::to_string(*root);
    for (CategoryId id : sorted_sources) {
      canonical += "," + std::to_string(id);
    }
    closure_key = EpochScope(ctx->epoch) + "m/" + canonical;
    response_key = "summarizable/" + closure_key;
    theory_salt = FingerprintBytes(closure_key).lo;
    std::string cached_body;
    if (caches->LookupResponse(response_key, &cached_body)) {
      return CachedResponse(std::move(cached_body), "response");
    }
    bool summarizable = false;
    if (caches->closure().Lookup(closure_key, &summarizable)) {
      // A cached definitive verdict always covered every bottom.
      size_t bottoms = 0;
      for (CategoryId bottom : ctx->schema->hierarchy().bottom_categories()) {
        if (bottom != ctx->schema->hierarchy().all()) ++bottoms;
      }
      std::string out = "{\"schema\": " + obs::JsonString(ctx->schema_name) +
                        ", \"category\": " + obs::JsonString(*category) +
                        ", \"definitive\": true, \"summarizable\": " +
                        BoolJson(summarizable) +
                        ", \"bottoms_checked\": " + std::to_string(bottoms) +
                        ", \"expand_calls\": 0}";
      return CachedResponse(std::move(out), "closure");
    }
  }

  DimsatOptions dopt = EngineOptions(options_, budget, ctx->threads);
  std::shared_ptr<NoGoodStore> nogoods;
  if (cacheable) {
    // Each per-bottom Implies() searches Σ ∪ {¬α_bottom}; α_bottom is
    // determined by (bottom, target, sources), the salt covers
    // (target, sources), and the bottom is the signature's root — so
    // (salt, root) pins the exact theory of every run.
    nogoods = caches->NoGoodsFor(ctx->epoch);
    dopt.nogoods = nogoods.get();
    dopt.nogood_salt = theory_salt;
  }
  auto result = IsSummarizable(*ctx->schema, *root, s, dopt);
  if (!result.ok()) return ErrorResponse(result.status());

  std::string out = "{\"schema\": " + obs::JsonString(ctx->schema_name) +
                    ", \"category\": " + obs::JsonString(*category);
  if (result->status.ok()) {
    out += ", \"definitive\": true, \"summarizable\": " +
           BoolJson(result->summarizable);
    if (cacheable) {
      caches->closure().Insert(closure_key, result->summarizable);
    }
  } else if (IsBudgetError(result->status)) {
    out += RenderBudgetTail(result->status, nullptr).json;
  } else {
    return ErrorResponse(result->status);
  }
  out += ", \"bottoms_checked\": " + std::to_string(result->details.size());
  out += ", \"expand_calls\": " +
         std::to_string(result->stats.expand_calls) + "}";
  if (cacheable && result->status.ok()) {
    caches->InsertResponse(response_key, out);
  }
  return JsonResponse(200, std::move(out));
}

HttpResponse DimService::DoBatch(const JsonValue& body, const Budget& budget) {
  auto requests = body.RequireArray("requests");
  if (!requests.ok()) return ErrorResponse(requests.status());
  const std::vector<JsonValue>& items = (*requests)->array;
  if (items.size() > options_.max_batch) {
    return ErrorResponse(Status::InvalidArgument(
        "batch of " + std::to_string(items.size()) + " exceeds the cap of " +
        std::to_string(options_.max_batch)));
  }

  std::string out = "{\"results\": [";
  bool first = true;
  bool expired = false;
  for (const JsonValue& item : items) {
    if (!first) out += ", ";
    first = false;
    if (expired || !budget.Check().ok()) {
      // The shared batch budget is gone; report the remaining items as
      // skipped instead of burning the drain deadline on them.
      expired = true;
      out += "{\"definitive\": false, \"skipped\": true}";
      continue;
    }
    if (!item.is_object()) {
      out += "{\"error\": \"batch item must be a JSON object\"}";
      continue;
    }
    auto op = item.RequireString("op");
    if (!op.ok()) {
      out += "{\"error\": " + obs::JsonString(op.status().message()) + "}";
      continue;
    }
    HttpResponse sub;
    if (*op == "check") {
      sub = DoCheck(item, budget);
    } else if (*op == "implies") {
      sub = DoImplies(item, budget);
    } else if (*op == "summarizable") {
      sub = DoSummarizable(item, budget);
    } else {
      out += "{\"error\": " + obs::JsonString("unknown op \"" + *op + "\"") +
             "}";
      continue;
    }
    // Sub-responses are JSON objects either way (result or error
    // body); embed them with their HTTP status attached.
    std::string sub_body = std::move(sub.body);
    while (!sub_body.empty() &&
           (sub_body.back() == '\n' || sub_body.back() == ' ')) {
      sub_body.pop_back();
    }
    if (sub.status == 200) {
      out += sub_body;
    } else {
      out += "{\"http_status\": " + std::to_string(sub.status) +
             ", \"detail\": " + sub_body.substr(1);
    }
  }
  out += "], \"count\": " + std::to_string(items.size()) + "}";
  return JsonResponse(200, std::move(out));
}

HttpResponse DimService::DoRegisterSchema(const JsonValue& body,
                                          const Budget& budget) {
  if (!options_.allow_register) {
    return ErrorResponse(Status::InvalidArgument(
        "schema registration is disabled on this server"));
  }
  auto name = body.RequireString("name");
  if (!name.ok()) return ErrorResponse(name.status());
  if (!ValidSchemaName(*name)) {
    return ErrorResponse(Status::InvalidArgument(
        "field \"name\" must be non-empty, valid UTF-8 without control "
        "characters, and at most 128 bytes"));
  }
  auto text = body.RequireString("text");
  if (!text.ok()) return ErrorResponse(text.status());

  Status registered = options_.registry->Register(*name, *text, &budget);
  if (!registered.ok()) return ErrorResponse(registered);
  std::shared_ptr<const DimensionSchema> schema =
      options_.registry->Find(*name);
  std::string out = "{\"name\": " + obs::JsonString(*name);
  if (schema != nullptr) {
    out += ", \"categories\": " +
           std::to_string(schema->hierarchy().num_categories());
    out += ", \"constraints\": " +
           std::to_string(schema->constraints().size());
  }
  out += "}";
  return JsonResponse(200, std::move(out));
}

}  // namespace olapdc::service
