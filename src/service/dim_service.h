// DimService: the transport-free request plane of olapdcd.
//
// HandleRequest() maps one parsed HTTP request to one response, with
// the full crash-proof lifecycle around every call into the reasoning
// engines:
//
//   admission  — an AdmissionGate ticket is taken before any work;
//                overload (or drain) sheds with 503 and a Retry-After
//                header derived from the gate's adaptive hint (the
//                same "retry-after-ms=" hint the CLI/RetryPolicy
//                parse — one source of truth).
//   budgets    — every request runs under its own Budget: a clamped
//                deadline, the service-wide drain cancellation token,
//                and a fresh per-request MemoryBudget, so one greedy
//                request exhausts itself, not the process.
//   body JSON  — parsed with src/io's depth-capped parser; malformed
//                bodies are 400 with a line:column diagnostic, and
//                missing/mistyped fields are 400 naming the field
//                (never silently defaulted).
//   drain      — BeginDrain() sheds new work; CancelInFlight() trips
//                the shared cancellation token so in-flight DIMSAT
//                runs stop at the next budget probe and return their
//                serialized DimsatCheckpoint to the client, who can
//                resubmit it as "resume" (here or on another replica).
//   isolation  — requests reason against shared_ptr<const> schema
//                snapshots from the SchemaRegistry; a poisoned request
//                (fault-injected, malformed, out-of-memory) dies with
//                its own response and leaves no state behind.
//
// Endpoints (POST, JSON bodies):
//   /v1/check         {schema, category, deadline_ms?, threads?, resume?}
//   /v1/implies       {schema, constraint, deadline_ms?, threads?}
//   /v1/summarizable  {schema, category, sources, deadline_ms?, threads?}
//   /v1/batch         {requests: [{op, ...}, ...], deadline_ms?}
//   /v1/schemas       {name, text}   (registers/replaces a schema)
//
// Engine budget expiries are *data*, not transport errors: the
// response is 200 with "definitive": false, the partial statistics,
// and (sequential runs) a "checkpoint" to resume from. Only hard
// errors (bad input 4xx, unknown schema 404, internal faults 500)
// surface as HTTP error statuses.
//
// The outcome accounting (requests == ok + errors + shed) is exact and
// exposed via counters — the chaos soak's conservation invariant.

#ifndef OLAPDC_SERVICE_DIM_SERVICE_H_
#define OLAPDC_SERVICE_DIM_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/budget.h"
#include "exec/admission.h"
#include "obs/http_server.h"
#include "service/schema_registry.h"

namespace olapdc {
struct JsonValue;
}  // namespace olapdc

namespace olapdc::service {

class ServiceCaches;

class DimService {
 public:
  struct Options {
    /// Required; not owned.
    SchemaRegistry* registry = nullptr;
    /// Optional overload shedding; not owned.
    exec::AdmissionGate* gate = nullptr;
    /// Deadline applied when the request names none, and the clamp
    /// ceiling when it does.
    int64_t default_deadline_ms = 2000;
    int64_t max_deadline_ms = 30000;
    /// Per-request memory envelope.
    uint64_t memory_budget_bytes = 64ull << 20;
    /// Ceiling on a request's "threads" field (1 = sequential only).
    int max_threads = 1;
    /// Ceiling on /v1/batch fan-out.
    size_t max_batch = 64;
    /// EXPAND-call cap forwarded to every DIMSAT run.
    uint64_t max_expand_calls = UINT64_MAX;
    /// Whether POST /v1/schemas may (re)register schemas.
    bool allow_register = true;
    /// Cross-request cache plane (service_caches.h); not owned, null
    /// disables all caching — request handling is then bit-identical
    /// to the uncached service. With caches attached, definitive
    /// answers are served from the response/closure layers when the
    /// epoch matches (marked "cached": true in the body) and every
    /// DIMSAT run shares the epoch's no-good store. Resume requests
    /// bypass the read path entirely but still warm the no-good layer.
    ServiceCaches* caches = nullptr;
  };

  explicit DimService(const Options& options) : options_(options) {}
  DimService(const DimService&) = delete;
  DimService& operator=(const DimService&) = delete;

  /// Serves one request. Thread-safe.
  obs::HttpResponse HandleRequest(const obs::HttpRequest& request);

  /// Drain, phase 1: shed every new request (503) while in-flight ones
  /// run to completion.
  void BeginDrain();

  /// Drain, phase 2: trip the shared cancellation token so in-flight
  /// runs stop at their next budget probe and checkpoint.
  void CancelInFlight();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Outcome accounting: requests() == ok() + errors() + shed() holds
  /// whenever no request is mid-flight.
  uint64_t requests() const { return requests_.load(); }
  uint64_t ok() const { return ok_.load(); }
  uint64_t errors() const { return errors_.load(); }
  uint64_t shed() const { return shed_.load(); }
  /// Responses that carried a resumable checkpoint.
  uint64_t checkpointed() const { return checkpointed_.load(); }

 private:
  obs::HttpResponse Route(const obs::HttpRequest& request);
  obs::HttpResponse DoCheck(const JsonValue& body, const Budget& budget);
  obs::HttpResponse DoImplies(const JsonValue& body, const Budget& budget);
  obs::HttpResponse DoSummarizable(const JsonValue& body,
                                   const Budget& budget);
  obs::HttpResponse DoBatch(const JsonValue& body, const Budget& budget);
  obs::HttpResponse DoRegisterSchema(const JsonValue& body,
                                     const Budget& budget);

  Options options_;
  CancellationSource drain_cancel_;
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> checkpointed_{0};
};

}  // namespace olapdc::service

#endif  // OLAPDC_SERVICE_DIM_SERVICE_H_
