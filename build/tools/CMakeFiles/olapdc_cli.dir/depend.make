# Empty dependencies file for olapdc_cli.
# This may be replaced when dependencies are built.
