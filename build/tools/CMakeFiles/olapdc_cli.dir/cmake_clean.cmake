file(REMOVE_RECURSE
  "CMakeFiles/olapdc_cli.dir/olapdc_cli.cc.o"
  "CMakeFiles/olapdc_cli.dir/olapdc_cli.cc.o.d"
  "olapdc"
  "olapdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
