# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_check "/root/repo/build/tools/olapdc" "check" "/root/repo/data/location.olapdc")
set_tests_properties(cli_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_frozen "/root/repo/build/tools/olapdc" "frozen" "/root/repo/data/location.olapdc" "Store")
set_tests_properties(cli_frozen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_implies "/root/repo/build/tools/olapdc" "implies" "/root/repo/data/location.olapdc" "Store.Country -> Store.City.Country")
set_tests_properties(cli_implies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_validate "/root/repo/build/tools/olapdc" "validate" "/root/repo/data/location.olapdc" "/root/repo/data/location_instance.txt")
set_tests_properties(cli_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/olapdc" "report" "/root/repo/data/location.olapdc")
set_tests_properties(cli_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
