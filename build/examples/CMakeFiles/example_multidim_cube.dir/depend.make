# Empty dependencies file for example_multidim_cube.
# This may be replaced when dependencies are built.
