file(REMOVE_RECURSE
  "CMakeFiles/example_multidim_cube.dir/multidim_cube.cc.o"
  "CMakeFiles/example_multidim_cube.dir/multidim_cube.cc.o.d"
  "example_multidim_cube"
  "example_multidim_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multidim_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
