file(REMOVE_RECURSE
  "CMakeFiles/example_schema_design.dir/schema_design.cc.o"
  "CMakeFiles/example_schema_design.dir/schema_design.cc.o.d"
  "example_schema_design"
  "example_schema_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_schema_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
