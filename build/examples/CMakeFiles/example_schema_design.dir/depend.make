# Empty dependencies file for example_schema_design.
# This may be replaced when dependencies are built.
