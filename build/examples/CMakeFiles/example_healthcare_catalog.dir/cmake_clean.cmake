file(REMOVE_RECURSE
  "CMakeFiles/example_healthcare_catalog.dir/healthcare_catalog.cc.o"
  "CMakeFiles/example_healthcare_catalog.dir/healthcare_catalog.cc.o.d"
  "example_healthcare_catalog"
  "example_healthcare_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_healthcare_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
