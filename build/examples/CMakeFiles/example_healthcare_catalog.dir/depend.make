# Empty dependencies file for example_healthcare_catalog.
# This may be replaced when dependencies are built.
