# Empty compiler generated dependencies file for example_retail_navigation.
# This may be replaced when dependencies are built.
