file(REMOVE_RECURSE
  "CMakeFiles/example_retail_navigation.dir/retail_navigation.cc.o"
  "CMakeFiles/example_retail_navigation.dir/retail_navigation.cc.o.d"
  "example_retail_navigation"
  "example_retail_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_retail_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
