file(REMOVE_RECURSE
  "CMakeFiles/fig7_dimsat_trace.dir/fig7_dimsat_trace.cc.o"
  "CMakeFiles/fig7_dimsat_trace.dir/fig7_dimsat_trace.cc.o.d"
  "fig7_dimsat_trace"
  "fig7_dimsat_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dimsat_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
