# Empty dependencies file for fig7_dimsat_trace.
# This may be replaced when dependencies are built.
