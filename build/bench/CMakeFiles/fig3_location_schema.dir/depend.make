# Empty dependencies file for fig3_location_schema.
# This may be replaced when dependencies are built.
