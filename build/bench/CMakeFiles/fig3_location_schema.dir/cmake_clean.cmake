file(REMOVE_RECURSE
  "CMakeFiles/fig3_location_schema.dir/fig3_location_schema.cc.o"
  "CMakeFiles/fig3_location_schema.dir/fig3_location_schema.cc.o.d"
  "fig3_location_schema"
  "fig3_location_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_location_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
