# Empty compiler generated dependencies file for practical_suite.
# This may be replaced when dependencies are built.
