file(REMOVE_RECURSE
  "CMakeFiles/practical_suite.dir/practical_suite.cc.o"
  "CMakeFiles/practical_suite.dir/practical_suite.cc.o.d"
  "practical_suite"
  "practical_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/practical_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
