file(REMOVE_RECURSE
  "CMakeFiles/scaling_categories.dir/scaling_categories.cc.o"
  "CMakeFiles/scaling_categories.dir/scaling_categories.cc.o.d"
  "scaling_categories"
  "scaling_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
