# Empty dependencies file for scaling_categories.
# This may be replaced when dependencies are built.
