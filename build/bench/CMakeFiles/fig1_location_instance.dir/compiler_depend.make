# Empty compiler generated dependencies file for fig1_location_instance.
# This may be replaced when dependencies are built.
