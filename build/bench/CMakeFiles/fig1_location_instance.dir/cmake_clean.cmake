file(REMOVE_RECURSE
  "CMakeFiles/fig1_location_instance.dir/fig1_location_instance.cc.o"
  "CMakeFiles/fig1_location_instance.dir/fig1_location_instance.cc.o.d"
  "fig1_location_instance"
  "fig1_location_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_location_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
