file(REMOVE_RECURSE
  "CMakeFiles/fig4_frozen_dimensions.dir/fig4_frozen_dimensions.cc.o"
  "CMakeFiles/fig4_frozen_dimensions.dir/fig4_frozen_dimensions.cc.o.d"
  "fig4_frozen_dimensions"
  "fig4_frozen_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_frozen_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
