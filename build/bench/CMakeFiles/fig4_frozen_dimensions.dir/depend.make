# Empty dependencies file for fig4_frozen_dimensions.
# This may be replaced when dependencies are built.
