file(REMOVE_RECURSE
  "CMakeFiles/dimsat_vs_naive.dir/dimsat_vs_naive.cc.o"
  "CMakeFiles/dimsat_vs_naive.dir/dimsat_vs_naive.cc.o.d"
  "dimsat_vs_naive"
  "dimsat_vs_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsat_vs_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
