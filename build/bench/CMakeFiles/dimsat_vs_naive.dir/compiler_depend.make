# Empty compiler generated dependencies file for dimsat_vs_naive.
# This may be replaced when dependencies are built.
