# Empty compiler generated dependencies file for aggregate_navigation.
# This may be replaced when dependencies are built.
