file(REMOVE_RECURSE
  "CMakeFiles/aggregate_navigation.dir/aggregate_navigation.cc.o"
  "CMakeFiles/aggregate_navigation.dir/aggregate_navigation.cc.o.d"
  "aggregate_navigation"
  "aggregate_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
