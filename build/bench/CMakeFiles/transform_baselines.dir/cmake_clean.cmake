file(REMOVE_RECURSE
  "CMakeFiles/transform_baselines.dir/transform_baselines.cc.o"
  "CMakeFiles/transform_baselines.dir/transform_baselines.cc.o.d"
  "transform_baselines"
  "transform_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
