# Empty dependencies file for transform_baselines.
# This may be replaced when dependencies are built.
