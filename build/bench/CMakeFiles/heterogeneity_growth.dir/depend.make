# Empty dependencies file for heterogeneity_growth.
# This may be replaced when dependencies are built.
