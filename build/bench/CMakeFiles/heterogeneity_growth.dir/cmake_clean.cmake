file(REMOVE_RECURSE
  "CMakeFiles/heterogeneity_growth.dir/heterogeneity_growth.cc.o"
  "CMakeFiles/heterogeneity_growth.dir/heterogeneity_growth.cc.o.d"
  "heterogeneity_growth"
  "heterogeneity_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneity_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
