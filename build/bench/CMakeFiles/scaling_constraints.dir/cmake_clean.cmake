file(REMOVE_RECURSE
  "CMakeFiles/scaling_constraints.dir/scaling_constraints.cc.o"
  "CMakeFiles/scaling_constraints.dir/scaling_constraints.cc.o.d"
  "scaling_constraints"
  "scaling_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
