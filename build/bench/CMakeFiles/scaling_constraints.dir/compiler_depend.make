# Empty compiler generated dependencies file for scaling_constraints.
# This may be replaced when dependencies are built.
