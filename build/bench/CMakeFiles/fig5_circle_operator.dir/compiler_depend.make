# Empty compiler generated dependencies file for fig5_circle_operator.
# This may be replaced when dependencies are built.
