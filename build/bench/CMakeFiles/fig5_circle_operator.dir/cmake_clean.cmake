file(REMOVE_RECURSE
  "CMakeFiles/fig5_circle_operator.dir/fig5_circle_operator.cc.o"
  "CMakeFiles/fig5_circle_operator.dir/fig5_circle_operator.cc.o.d"
  "fig5_circle_operator"
  "fig5_circle_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_circle_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
