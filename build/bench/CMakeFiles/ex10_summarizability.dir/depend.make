# Empty dependencies file for ex10_summarizability.
# This may be replaced when dependencies are built.
