file(REMOVE_RECURSE
  "CMakeFiles/ex10_summarizability.dir/ex10_summarizability.cc.o"
  "CMakeFiles/ex10_summarizability.dir/ex10_summarizability.cc.o.d"
  "ex10_summarizability"
  "ex10_summarizability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex10_summarizability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
