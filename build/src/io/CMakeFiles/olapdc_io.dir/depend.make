# Empty dependencies file for olapdc_io.
# This may be replaced when dependencies are built.
