file(REMOVE_RECURSE
  "libolapdc_io.a"
)
