
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/instance_io.cc" "src/io/CMakeFiles/olapdc_io.dir/instance_io.cc.o" "gcc" "src/io/CMakeFiles/olapdc_io.dir/instance_io.cc.o.d"
  "/root/repo/src/io/schema_io.cc" "src/io/CMakeFiles/olapdc_io.dir/schema_io.cc.o" "gcc" "src/io/CMakeFiles/olapdc_io.dir/schema_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/olapdc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/olapdc_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/dim/CMakeFiles/olapdc_dim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olapdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/olapdc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
