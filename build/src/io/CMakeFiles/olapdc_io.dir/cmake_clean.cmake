file(REMOVE_RECURSE
  "CMakeFiles/olapdc_io.dir/instance_io.cc.o"
  "CMakeFiles/olapdc_io.dir/instance_io.cc.o.d"
  "CMakeFiles/olapdc_io.dir/schema_io.cc.o"
  "CMakeFiles/olapdc_io.dir/schema_io.cc.o.d"
  "libolapdc_io.a"
  "libolapdc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
