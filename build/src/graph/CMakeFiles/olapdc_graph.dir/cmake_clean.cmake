file(REMOVE_RECURSE
  "CMakeFiles/olapdc_graph.dir/algorithms.cc.o"
  "CMakeFiles/olapdc_graph.dir/algorithms.cc.o.d"
  "CMakeFiles/olapdc_graph.dir/digraph.cc.o"
  "CMakeFiles/olapdc_graph.dir/digraph.cc.o.d"
  "CMakeFiles/olapdc_graph.dir/dot.cc.o"
  "CMakeFiles/olapdc_graph.dir/dot.cc.o.d"
  "libolapdc_graph.a"
  "libolapdc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
