# Empty compiler generated dependencies file for olapdc_graph.
# This may be replaced when dependencies are built.
