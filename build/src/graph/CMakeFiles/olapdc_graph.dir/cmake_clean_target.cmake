file(REMOVE_RECURSE
  "libolapdc_graph.a"
)
