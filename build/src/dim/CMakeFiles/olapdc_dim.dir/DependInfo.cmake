
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dim/dimension_instance.cc" "src/dim/CMakeFiles/olapdc_dim.dir/dimension_instance.cc.o" "gcc" "src/dim/CMakeFiles/olapdc_dim.dir/dimension_instance.cc.o.d"
  "/root/repo/src/dim/hierarchy_schema.cc" "src/dim/CMakeFiles/olapdc_dim.dir/hierarchy_schema.cc.o" "gcc" "src/dim/CMakeFiles/olapdc_dim.dir/hierarchy_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/olapdc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olapdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
