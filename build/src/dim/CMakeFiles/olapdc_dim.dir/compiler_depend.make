# Empty compiler generated dependencies file for olapdc_dim.
# This may be replaced when dependencies are built.
