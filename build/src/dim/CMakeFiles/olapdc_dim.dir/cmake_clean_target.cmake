file(REMOVE_RECURSE
  "libolapdc_dim.a"
)
