file(REMOVE_RECURSE
  "CMakeFiles/olapdc_dim.dir/dimension_instance.cc.o"
  "CMakeFiles/olapdc_dim.dir/dimension_instance.cc.o.d"
  "CMakeFiles/olapdc_dim.dir/hierarchy_schema.cc.o"
  "CMakeFiles/olapdc_dim.dir/hierarchy_schema.cc.o.d"
  "libolapdc_dim.a"
  "libolapdc_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
