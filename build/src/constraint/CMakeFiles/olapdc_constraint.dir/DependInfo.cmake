
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/evaluator.cc" "src/constraint/CMakeFiles/olapdc_constraint.dir/evaluator.cc.o" "gcc" "src/constraint/CMakeFiles/olapdc_constraint.dir/evaluator.cc.o.d"
  "/root/repo/src/constraint/expr.cc" "src/constraint/CMakeFiles/olapdc_constraint.dir/expr.cc.o" "gcc" "src/constraint/CMakeFiles/olapdc_constraint.dir/expr.cc.o.d"
  "/root/repo/src/constraint/normalize.cc" "src/constraint/CMakeFiles/olapdc_constraint.dir/normalize.cc.o" "gcc" "src/constraint/CMakeFiles/olapdc_constraint.dir/normalize.cc.o.d"
  "/root/repo/src/constraint/parser.cc" "src/constraint/CMakeFiles/olapdc_constraint.dir/parser.cc.o" "gcc" "src/constraint/CMakeFiles/olapdc_constraint.dir/parser.cc.o.d"
  "/root/repo/src/constraint/printer.cc" "src/constraint/CMakeFiles/olapdc_constraint.dir/printer.cc.o" "gcc" "src/constraint/CMakeFiles/olapdc_constraint.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dim/CMakeFiles/olapdc_dim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/olapdc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olapdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
