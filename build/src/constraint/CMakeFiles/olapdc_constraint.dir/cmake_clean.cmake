file(REMOVE_RECURSE
  "CMakeFiles/olapdc_constraint.dir/evaluator.cc.o"
  "CMakeFiles/olapdc_constraint.dir/evaluator.cc.o.d"
  "CMakeFiles/olapdc_constraint.dir/expr.cc.o"
  "CMakeFiles/olapdc_constraint.dir/expr.cc.o.d"
  "CMakeFiles/olapdc_constraint.dir/normalize.cc.o"
  "CMakeFiles/olapdc_constraint.dir/normalize.cc.o.d"
  "CMakeFiles/olapdc_constraint.dir/parser.cc.o"
  "CMakeFiles/olapdc_constraint.dir/parser.cc.o.d"
  "CMakeFiles/olapdc_constraint.dir/printer.cc.o"
  "CMakeFiles/olapdc_constraint.dir/printer.cc.o.d"
  "libolapdc_constraint.a"
  "libolapdc_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
