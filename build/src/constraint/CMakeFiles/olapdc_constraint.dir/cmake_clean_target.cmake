file(REMOVE_RECURSE
  "libolapdc_constraint.a"
)
