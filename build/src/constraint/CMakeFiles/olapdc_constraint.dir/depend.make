# Empty dependencies file for olapdc_constraint.
# This may be replaced when dependencies are built.
