# Empty dependencies file for olapdc_transform.
# This may be replaced when dependencies are built.
