file(REMOVE_RECURSE
  "libolapdc_transform.a"
)
