file(REMOVE_RECURSE
  "CMakeFiles/olapdc_transform.dir/dnf_transform.cc.o"
  "CMakeFiles/olapdc_transform.dir/dnf_transform.cc.o.d"
  "CMakeFiles/olapdc_transform.dir/null_padding.cc.o"
  "CMakeFiles/olapdc_transform.dir/null_padding.cc.o.d"
  "CMakeFiles/olapdc_transform.dir/split_constraints.cc.o"
  "CMakeFiles/olapdc_transform.dir/split_constraints.cc.o.d"
  "libolapdc_transform.a"
  "libolapdc_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
