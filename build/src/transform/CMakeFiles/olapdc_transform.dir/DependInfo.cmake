
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/dnf_transform.cc" "src/transform/CMakeFiles/olapdc_transform.dir/dnf_transform.cc.o" "gcc" "src/transform/CMakeFiles/olapdc_transform.dir/dnf_transform.cc.o.d"
  "/root/repo/src/transform/null_padding.cc" "src/transform/CMakeFiles/olapdc_transform.dir/null_padding.cc.o" "gcc" "src/transform/CMakeFiles/olapdc_transform.dir/null_padding.cc.o.d"
  "/root/repo/src/transform/split_constraints.cc" "src/transform/CMakeFiles/olapdc_transform.dir/split_constraints.cc.o" "gcc" "src/transform/CMakeFiles/olapdc_transform.dir/split_constraints.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dim/CMakeFiles/olapdc_dim.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/olapdc_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olapdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/olapdc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
