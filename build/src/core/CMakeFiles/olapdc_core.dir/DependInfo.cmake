
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cc" "src/core/CMakeFiles/olapdc_core.dir/assignment.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/assignment.cc.o.d"
  "/root/repo/src/core/check_subhierarchy.cc" "src/core/CMakeFiles/olapdc_core.dir/check_subhierarchy.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/check_subhierarchy.cc.o.d"
  "/root/repo/src/core/circle.cc" "src/core/CMakeFiles/olapdc_core.dir/circle.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/circle.cc.o.d"
  "/root/repo/src/core/diagnostics.cc" "src/core/CMakeFiles/olapdc_core.dir/diagnostics.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/diagnostics.cc.o.d"
  "/root/repo/src/core/dimsat.cc" "src/core/CMakeFiles/olapdc_core.dir/dimsat.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/dimsat.cc.o.d"
  "/root/repo/src/core/frozen.cc" "src/core/CMakeFiles/olapdc_core.dir/frozen.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/frozen.cc.o.d"
  "/root/repo/src/core/implication.cc" "src/core/CMakeFiles/olapdc_core.dir/implication.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/implication.cc.o.d"
  "/root/repo/src/core/location_example.cc" "src/core/CMakeFiles/olapdc_core.dir/location_example.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/location_example.cc.o.d"
  "/root/repo/src/core/mining.cc" "src/core/CMakeFiles/olapdc_core.dir/mining.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/mining.cc.o.d"
  "/root/repo/src/core/naive_sat.cc" "src/core/CMakeFiles/olapdc_core.dir/naive_sat.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/naive_sat.cc.o.d"
  "/root/repo/src/core/reasoner.cc" "src/core/CMakeFiles/olapdc_core.dir/reasoner.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/reasoner.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/olapdc_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/report.cc.o.d"
  "/root/repo/src/core/sat_reduction.cc" "src/core/CMakeFiles/olapdc_core.dir/sat_reduction.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/sat_reduction.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/olapdc_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/schema.cc.o.d"
  "/root/repo/src/core/subhierarchy.cc" "src/core/CMakeFiles/olapdc_core.dir/subhierarchy.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/subhierarchy.cc.o.d"
  "/root/repo/src/core/summarizability.cc" "src/core/CMakeFiles/olapdc_core.dir/summarizability.cc.o" "gcc" "src/core/CMakeFiles/olapdc_core.dir/summarizability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraint/CMakeFiles/olapdc_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/dim/CMakeFiles/olapdc_dim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/olapdc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olapdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
