# Empty dependencies file for olapdc_core.
# This may be replaced when dependencies are built.
