file(REMOVE_RECURSE
  "libolapdc_core.a"
)
