file(REMOVE_RECURSE
  "libolapdc_common.a"
)
