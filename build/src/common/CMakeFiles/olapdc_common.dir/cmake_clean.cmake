file(REMOVE_RECURSE
  "CMakeFiles/olapdc_common.dir/status.cc.o"
  "CMakeFiles/olapdc_common.dir/status.cc.o.d"
  "CMakeFiles/olapdc_common.dir/string_util.cc.o"
  "CMakeFiles/olapdc_common.dir/string_util.cc.o.d"
  "libolapdc_common.a"
  "libolapdc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
