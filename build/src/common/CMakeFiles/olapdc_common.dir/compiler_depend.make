# Empty compiler generated dependencies file for olapdc_common.
# This may be replaced when dependencies are built.
