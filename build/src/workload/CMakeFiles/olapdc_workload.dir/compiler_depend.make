# Empty compiler generated dependencies file for olapdc_workload.
# This may be replaced when dependencies are built.
