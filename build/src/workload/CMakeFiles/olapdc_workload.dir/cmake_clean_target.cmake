file(REMOVE_RECURSE
  "libolapdc_workload.a"
)
