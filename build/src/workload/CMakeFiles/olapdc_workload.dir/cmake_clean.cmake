file(REMOVE_RECURSE
  "CMakeFiles/olapdc_workload.dir/instance_generator.cc.o"
  "CMakeFiles/olapdc_workload.dir/instance_generator.cc.o.d"
  "CMakeFiles/olapdc_workload.dir/realistic.cc.o"
  "CMakeFiles/olapdc_workload.dir/realistic.cc.o.d"
  "CMakeFiles/olapdc_workload.dir/schema_generator.cc.o"
  "CMakeFiles/olapdc_workload.dir/schema_generator.cc.o.d"
  "libolapdc_workload.a"
  "libolapdc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
