# Empty compiler generated dependencies file for olapdc_olap.
# This may be replaced when dependencies are built.
