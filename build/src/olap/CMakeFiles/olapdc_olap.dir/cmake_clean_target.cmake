file(REMOVE_RECURSE
  "libolapdc_olap.a"
)
