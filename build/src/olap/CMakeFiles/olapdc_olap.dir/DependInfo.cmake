
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/olap/aggregate.cc" "src/olap/CMakeFiles/olapdc_olap.dir/aggregate.cc.o" "gcc" "src/olap/CMakeFiles/olapdc_olap.dir/aggregate.cc.o.d"
  "/root/repo/src/olap/algebraic.cc" "src/olap/CMakeFiles/olapdc_olap.dir/algebraic.cc.o" "gcc" "src/olap/CMakeFiles/olapdc_olap.dir/algebraic.cc.o.d"
  "/root/repo/src/olap/cube_view.cc" "src/olap/CMakeFiles/olapdc_olap.dir/cube_view.cc.o" "gcc" "src/olap/CMakeFiles/olapdc_olap.dir/cube_view.cc.o.d"
  "/root/repo/src/olap/datacube.cc" "src/olap/CMakeFiles/olapdc_olap.dir/datacube.cc.o" "gcc" "src/olap/CMakeFiles/olapdc_olap.dir/datacube.cc.o.d"
  "/root/repo/src/olap/fact_table.cc" "src/olap/CMakeFiles/olapdc_olap.dir/fact_table.cc.o" "gcc" "src/olap/CMakeFiles/olapdc_olap.dir/fact_table.cc.o.d"
  "/root/repo/src/olap/navigator.cc" "src/olap/CMakeFiles/olapdc_olap.dir/navigator.cc.o" "gcc" "src/olap/CMakeFiles/olapdc_olap.dir/navigator.cc.o.d"
  "/root/repo/src/olap/view_selection.cc" "src/olap/CMakeFiles/olapdc_olap.dir/view_selection.cc.o" "gcc" "src/olap/CMakeFiles/olapdc_olap.dir/view_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/olapdc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dim/CMakeFiles/olapdc_dim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olapdc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/olapdc_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/olapdc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
