file(REMOVE_RECURSE
  "CMakeFiles/olapdc_olap.dir/aggregate.cc.o"
  "CMakeFiles/olapdc_olap.dir/aggregate.cc.o.d"
  "CMakeFiles/olapdc_olap.dir/algebraic.cc.o"
  "CMakeFiles/olapdc_olap.dir/algebraic.cc.o.d"
  "CMakeFiles/olapdc_olap.dir/cube_view.cc.o"
  "CMakeFiles/olapdc_olap.dir/cube_view.cc.o.d"
  "CMakeFiles/olapdc_olap.dir/datacube.cc.o"
  "CMakeFiles/olapdc_olap.dir/datacube.cc.o.d"
  "CMakeFiles/olapdc_olap.dir/fact_table.cc.o"
  "CMakeFiles/olapdc_olap.dir/fact_table.cc.o.d"
  "CMakeFiles/olapdc_olap.dir/navigator.cc.o"
  "CMakeFiles/olapdc_olap.dir/navigator.cc.o.d"
  "CMakeFiles/olapdc_olap.dir/view_selection.cc.o"
  "CMakeFiles/olapdc_olap.dir/view_selection.cc.o.d"
  "libolapdc_olap.a"
  "libolapdc_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olapdc_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
