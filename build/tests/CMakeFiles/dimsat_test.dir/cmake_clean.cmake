file(REMOVE_RECURSE
  "CMakeFiles/dimsat_test.dir/dimsat_test.cc.o"
  "CMakeFiles/dimsat_test.dir/dimsat_test.cc.o.d"
  "dimsat_test"
  "dimsat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimsat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
