# Empty dependencies file for dimsat_test.
# This may be replaced when dependencies are built.
