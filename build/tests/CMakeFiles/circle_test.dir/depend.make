# Empty dependencies file for circle_test.
# This may be replaced when dependencies are built.
