# Empty compiler generated dependencies file for circle_test.
# This may be replaced when dependencies are built.
