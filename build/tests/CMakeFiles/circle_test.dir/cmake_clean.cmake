file(REMOVE_RECURSE
  "CMakeFiles/circle_test.dir/circle_test.cc.o"
  "CMakeFiles/circle_test.dir/circle_test.cc.o.d"
  "circle_test"
  "circle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
