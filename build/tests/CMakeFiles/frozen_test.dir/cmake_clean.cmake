file(REMOVE_RECURSE
  "CMakeFiles/frozen_test.dir/frozen_test.cc.o"
  "CMakeFiles/frozen_test.dir/frozen_test.cc.o.d"
  "frozen_test"
  "frozen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frozen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
