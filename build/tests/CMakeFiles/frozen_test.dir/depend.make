# Empty dependencies file for frozen_test.
# This may be replaced when dependencies are built.
