# Empty compiler generated dependencies file for order_atom_test.
# This may be replaced when dependencies are built.
