file(REMOVE_RECURSE
  "CMakeFiles/order_atom_test.dir/order_atom_test.cc.o"
  "CMakeFiles/order_atom_test.dir/order_atom_test.cc.o.d"
  "order_atom_test"
  "order_atom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_atom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
