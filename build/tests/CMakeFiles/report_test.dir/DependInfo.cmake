
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/report_test.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/report_test.dir/report_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/olapdc_io.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/olapdc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/olapdc_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/olap/CMakeFiles/olapdc_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/olapdc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/olapdc_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/dim/CMakeFiles/olapdc_dim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/olapdc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/olapdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
