file(REMOVE_RECURSE
  "CMakeFiles/subhierarchy_test.dir/subhierarchy_test.cc.o"
  "CMakeFiles/subhierarchy_test.dir/subhierarchy_test.cc.o.d"
  "subhierarchy_test"
  "subhierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subhierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
