# Empty compiler generated dependencies file for subhierarchy_test.
# This may be replaced when dependencies are built.
