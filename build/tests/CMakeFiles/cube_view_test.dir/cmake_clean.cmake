file(REMOVE_RECURSE
  "CMakeFiles/cube_view_test.dir/cube_view_test.cc.o"
  "CMakeFiles/cube_view_test.dir/cube_view_test.cc.o.d"
  "cube_view_test"
  "cube_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
