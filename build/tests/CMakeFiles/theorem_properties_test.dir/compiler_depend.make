# Empty compiler generated dependencies file for theorem_properties_test.
# This may be replaced when dependencies are built.
