file(REMOVE_RECURSE
  "CMakeFiles/theorem_properties_test.dir/theorem_properties_test.cc.o"
  "CMakeFiles/theorem_properties_test.dir/theorem_properties_test.cc.o.d"
  "theorem_properties_test"
  "theorem_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
