file(REMOVE_RECURSE
  "CMakeFiles/substrate_property_test.dir/substrate_property_test.cc.o"
  "CMakeFiles/substrate_property_test.dir/substrate_property_test.cc.o.d"
  "substrate_property_test"
  "substrate_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
