file(REMOVE_RECURSE
  "CMakeFiles/parallel_dimsat_test.dir/parallel_dimsat_test.cc.o"
  "CMakeFiles/parallel_dimsat_test.dir/parallel_dimsat_test.cc.o.d"
  "parallel_dimsat_test"
  "parallel_dimsat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_dimsat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
