# Empty dependencies file for parallel_dimsat_test.
# This may be replaced when dependencies are built.
