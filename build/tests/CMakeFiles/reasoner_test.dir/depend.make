# Empty dependencies file for reasoner_test.
# This may be replaced when dependencies are built.
