file(REMOVE_RECURSE
  "CMakeFiles/naive_vs_dimsat_test.dir/naive_vs_dimsat_test.cc.o"
  "CMakeFiles/naive_vs_dimsat_test.dir/naive_vs_dimsat_test.cc.o.d"
  "naive_vs_dimsat_test"
  "naive_vs_dimsat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_vs_dimsat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
