# Empty compiler generated dependencies file for naive_vs_dimsat_test.
# This may be replaced when dependencies are built.
