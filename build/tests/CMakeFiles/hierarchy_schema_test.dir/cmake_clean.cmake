file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_schema_test.dir/hierarchy_schema_test.cc.o"
  "CMakeFiles/hierarchy_schema_test.dir/hierarchy_schema_test.cc.o.d"
  "hierarchy_schema_test"
  "hierarchy_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
