# Empty dependencies file for hierarchy_schema_test.
# This may be replaced when dependencies are built.
