# Empty compiler generated dependencies file for parser_printer_test.
# This may be replaced when dependencies are built.
