file(REMOVE_RECURSE
  "CMakeFiles/parser_printer_test.dir/parser_printer_test.cc.o"
  "CMakeFiles/parser_printer_test.dir/parser_printer_test.cc.o.d"
  "parser_printer_test"
  "parser_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
