# Empty dependencies file for dimension_instance_test.
# This may be replaced when dependencies are built.
