file(REMOVE_RECURSE
  "CMakeFiles/dimension_instance_test.dir/dimension_instance_test.cc.o"
  "CMakeFiles/dimension_instance_test.dir/dimension_instance_test.cc.o.d"
  "dimension_instance_test"
  "dimension_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimension_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
