// loadgen — HTTP load generator for olapdcd.
//
// Hammers a live daemon with the mixed request shapes of the request
// plane (check / implies / summarizable / batch, plus deliberately
// hostile shapes: malformed JSON, unknown schemas, 1ms deadlines that
// force the checkpoint path), from several concurrent connections,
// and reports per-endpoint latency percentiles, throughput, and the
// shed rate as BENCH_service.json (bench/bench_util.h reporter format,
// consumed by bench_gate).
//
//   loadgen --port N [--threads T] [--duration-ms D]
//   loadgen --spawn ./olapdcd [--threads T] [--duration-ms D]
//           [-- daemon flags...]
//
// --spawn forks the daemon itself (ephemeral port parsed from its
// stdout), measures the SIGTERM drain wall time after the load phase,
// and propagates a nonzero daemon exit status — which is how the CI
// smoke proves "drain completes within the deadline with exit 0" from
// outside the process.
//
// Client-side conservation is checked on exit: every request sent is
// accounted as exactly one of {2xx, shed 503, other 4xx/5xx,
// transport error}; a daemon that drops a request on the floor fails
// the run.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/location_example.h"
#include "io/schema_io.h"
#include "obs/json.h"
#include "tools/http_client.h"

namespace olapdc {
namespace {

using tools::HttpClient;

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr const char* kEndpoints[] = {"check", "implies", "summarizable",
                                      "batch", "hostile"};
constexpr size_t kNumEndpoints = 5;

struct EndpointStats {
  uint64_t sent = 0;
  uint64_t ok_2xx = 0;
  uint64_t shed_503 = 0;
  uint64_t http_4xx = 0;
  uint64_t http_5xx = 0;  // non-503
  uint64_t transport_errors = 0;
  uint64_t checkpoints = 0;
  uint64_t cache_served = 0;
  std::vector<int64_t> latencies_us;

  void Merge(const EndpointStats& other) {
    sent += other.sent;
    ok_2xx += other.ok_2xx;
    shed_503 += other.shed_503;
    http_4xx += other.http_4xx;
    http_5xx += other.http_5xx;
    transport_errors += other.transport_errors;
    checkpoints += other.checkpoints;
    cache_served += other.cache_served;
    latencies_us.insert(latencies_us.end(), other.latencies_us.begin(),
                        other.latencies_us.end());
  }
};

int64_t Percentile(std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct WorkerResult {
  EndpointStats per_endpoint[kNumEndpoints];
};

/// The request mix: mostly well-formed reasoning calls, with hostile
/// shapes sprinkled in. Index into kEndpoints for accounting.
struct Shape {
  size_t endpoint = 0;
  std::string path;
  std::string body;
  /// Raw bytes instead of a framed POST (malformed-HTTP shape).
  bool raw = false;
  std::string raw_bytes;
};

std::vector<Shape> BuildShapes() {
  std::vector<Shape> shapes;
  const std::string check =
      "{\"schema\": \"loadgen\", \"category\": \"Store\"}";
  const std::string implies =
      "{\"schema\": \"loadgen\", \"constraint\": \"Store/City\"}";
  const std::string summarizable =
      "{\"schema\": \"loadgen\", \"category\": \"Country\", "
      "\"sources\": [\"Store\"]}";
  const std::string batch =
      "{\"requests\": [{\"op\": \"check\", \"schema\": \"loadgen\", "
      "\"category\": \"Store\"}, {\"op\": \"implies\", \"schema\": "
      "\"loadgen\", \"constraint\": \"Store/City\"}]}";
  const std::string tiny_deadline =
      "{\"schema\": \"loadgen\", \"category\": \"Store\", "
      "\"deadline_ms\": 1}";
  auto add = [&shapes](size_t endpoint, const char* path,
                       const std::string& body) {
    Shape shape;
    shape.endpoint = endpoint;
    shape.path = path;
    shape.body = body;
    shapes.push_back(std::move(shape));
  };
  // Weighted mix; hostile shapes are a steady trickle, not the bulk.
  add(0, "/v1/check", check);
  add(1, "/v1/implies", implies);
  add(0, "/v1/check", check);
  add(2, "/v1/summarizable", summarizable);
  add(3, "/v1/batch", batch);
  add(0, "/v1/check", tiny_deadline);
  add(1, "/v1/implies", implies);
  add(4, "/v1/check", "{\"schema\": \"loadgen\", ");  // 400
  add(2, "/v1/summarizable", summarizable);
  add(4, "/v1/check",
      "{\"schema\": \"no-such-schema\", \"category\": \"Store\"}");  // 404
  add(0, "/v1/check", check);
  Shape garbage;  // malformed request line; server answers 400
  garbage.endpoint = 4;
  garbage.raw = true;
  garbage.raw_bytes = "BOGUS nonsense\r\n\r\n";
  shapes.push_back(garbage);
  return shapes;
}

void Worker(int port, const std::vector<Shape>& shapes,
            const std::vector<Shape>& repeats, double repeat_fraction,
            uint64_t seed, int64_t deadline_us, uint64_t min_requests,
            std::atomic<uint64_t>* global_sent, WorkerResult* out) {
  HttpClient client(port);
  size_t next = 0;
  // Per-worker xorshift64*: cheap, deterministic per seed.
  uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull;
  auto rand01 = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<double>(rng >> 11) / 9007199254740992.0;
  };
  while (NowUs() < deadline_us ||
         global_sent->load(std::memory_order_relaxed) < min_requests) {
    // --repeat-fraction: with probability f, re-send a well-formed body
    // from the mix instead of advancing the rotation — repeat-heavy
    // traffic, the shape the cross-request cache plane serves best.
    const bool repeat = repeat_fraction > 0.0 && !repeats.empty() &&
                        rand01() < repeat_fraction;
    const Shape& shape =
        repeat ? repeats[static_cast<size_t>(rand01() *
                                             static_cast<double>(
                                                 repeats.size())) %
                         repeats.size()]
               : shapes[next++ % shapes.size()];
    EndpointStats& stats = out->per_endpoint[shape.endpoint];
    ++stats.sent;
    global_sent->fetch_add(1, std::memory_order_relaxed);
    const int64_t start = NowUs();
    int status = -1;
    std::string body;
    if (shape.raw) {
      // Malformed framing: send raw bytes, read whatever error the
      // server produces, then reconnect (the server closes on 400).
      if (client.SendRaw(shape.raw_bytes)) {
        status = client.ReadResponse(&body);
      }
      client.Close();
    } else {
      status = client.Post(shape.path, shape.body, &body);
    }
    const int64_t elapsed = NowUs() - start;
    if (status < 0) {
      ++stats.transport_errors;
      client.Close();
      continue;
    }
    stats.latencies_us.push_back(elapsed);
    if (status == 503) {
      ++stats.shed_503;
    } else if (status >= 500) {
      ++stats.http_5xx;
    } else if (status >= 400) {
      ++stats.http_4xx;
    } else {
      ++stats.ok_2xx;
      if (body.find("\"checkpoint\"") != std::string::npos) {
        ++stats.checkpoints;
      }
      if (body.find("\"cached\": true") != std::string::npos) {
        ++stats.cache_served;
      }
    }
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: loadgen (--port N | --spawn <olapdcd>) [--threads T] "
      "[--duration-ms D] [--min-requests N] [--bench-name NAME] "
      "[--repeat-fraction F] [-- daemon flags...]\n");
  return 2;
}

struct SpawnedDaemon {
  pid_t pid = -1;
  int port = 0;
};

bool Spawn(const std::string& binary, const std::vector<std::string>& extra,
           SpawnedDaemon* out) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : extra) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::fprintf(stderr, "loadgen: execv %s: %s\n", binary.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  // Parse "olapdcd listening on port N" from the daemon's stdout.
  std::string line;
  char c;
  while (::read(pipe_fds[0], &c, 1) == 1) {
    if (c == '\n') {
      int port = 0;
      if (std::sscanf(line.c_str(), "olapdcd listening on port %d", &port) ==
              1 &&
          port > 0) {
        out->pid = pid;
        out->port = port;
        ::close(pipe_fds[0]);
        return true;
      }
      line.clear();
    } else {
      line += c;
    }
  }
  ::close(pipe_fds[0]);
  std::fprintf(stderr, "loadgen: daemon exited before announcing a port\n");
  ::waitpid(pid, nullptr, 0);
  return false;
}

int Run(int argc, char** argv) {
  int port = 0;
  std::string spawn_binary;
  int threads = 4;
  int64_t duration_ms = 3000;
  uint64_t min_requests = 0;
  double repeat_fraction = 0.0;
  std::string bench_name = "service";
  std::vector<std::string> daemon_args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--") {
      for (++i; i < argc; ++i) daemon_args.emplace_back(argv[i]);
      break;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage();
      port = std::atoi(v);
    } else if (arg == "--spawn") {
      const char* v = next();
      if (v == nullptr) return Usage();
      spawn_binary = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      threads = std::atoi(v);
    } else if (arg == "--duration-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      duration_ms = std::atoll(v);
    } else if (arg == "--min-requests") {
      const char* v = next();
      if (v == nullptr) return Usage();
      min_requests = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--bench-name") {
      const char* v = next();
      if (v == nullptr) return Usage();
      bench_name = v;
    } else if (arg == "--repeat-fraction") {
      const char* v = next();
      if (v == nullptr) return Usage();
      repeat_fraction = std::atof(v);
      if (repeat_fraction < 0.0 || repeat_fraction > 1.0) {
        std::fprintf(stderr,
                     "loadgen: --repeat-fraction must be in [0, 1]\n");
        return Usage();
      }
    } else {
      std::fprintf(stderr, "loadgen: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if ((port <= 0) == spawn_binary.empty()) return Usage();
  if (threads < 1 || duration_ms < 1) return Usage();

  std::signal(SIGPIPE, SIG_IGN);

  SpawnedDaemon daemon;
  if (!spawn_binary.empty()) {
    if (!Spawn(spawn_binary, daemon_args, &daemon)) return 1;
    port = daemon.port;
    std::fprintf(stderr, "loadgen: spawned olapdcd pid %d on port %d\n",
                 static_cast<int>(daemon.pid), port);
  }

  // Register the workload schema (the paper's location example) so the
  // request mix has something real to reason about.
  const std::string schema_text =
      SerializeSchema(bench::Unwrap(LocationSchema()));
  const std::string register_body = "{\"name\": \"loadgen\", \"text\": " +
                                    obs::JsonString(schema_text) + "}";
  {
    HttpClient setup(port);
    bool registered = false;
    for (int attempt = 0; attempt < 50 && !registered; ++attempt) {
      std::string body;
      const int status = setup.Post("/v1/schemas", register_body, &body);
      if (status == 200) {
        registered = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    if (!registered) {
      std::fprintf(stderr, "loadgen: could not register schema on port %d\n",
                   port);
      if (daemon.pid > 0) ::kill(daemon.pid, SIGKILL);
      return 1;
    }
  }

  const std::vector<Shape> shapes = BuildShapes();
  // Repeat candidates: the well-formed POSTs (hostile shapes stay on
  // the rotation only — repeating garbage exercises nothing new).
  std::vector<Shape> repeats;
  for (const Shape& shape : shapes) {
    if (!shape.raw && shape.endpoint != 4) repeats.push_back(shape);
  }
  const int64_t start_us = NowUs();
  const int64_t deadline_us = start_us + duration_ms * 1000;
  std::atomic<uint64_t> global_sent{0};
  std::vector<WorkerResult> results(static_cast<size_t>(threads));
  {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(Worker, port, std::cref(shapes), std::cref(repeats),
                        repeat_fraction, static_cast<uint64_t>(t + 1),
                        deadline_us, min_requests, &global_sent, &results[t]);
    }
    for (std::thread& t : pool) t.join();
  }
  const double elapsed_s =
      static_cast<double>(NowUs() - start_us) / 1e6;

  EndpointStats totals[kNumEndpoints];
  for (const WorkerResult& r : results) {
    for (size_t e = 0; e < kNumEndpoints; ++e) {
      totals[e].Merge(r.per_endpoint[e]);
    }
  }

  // Drain measurement (spawn mode): SIGTERM, then time until exit.
  int64_t drain_ms = -1;
  int daemon_exit = -1;
  if (daemon.pid > 0) {
    const int64_t term_us = NowUs();
    ::kill(daemon.pid, SIGTERM);
    int wstatus = 0;
    ::waitpid(daemon.pid, &wstatus, 0);
    drain_ms = (NowUs() - term_us) / 1000;
    daemon_exit = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128;
    std::fprintf(stderr, "loadgen: daemon exited %d after %lld ms drain\n",
                 daemon_exit, static_cast<long long>(drain_ms));
  }

  bench::BenchReporter reporter(bench_name);
  uint64_t all_sent = 0, all_ok = 0, all_shed = 0, all_4xx = 0, all_5xx = 0,
           all_transport = 0, all_checkpoints = 0, all_cache_served = 0;
  for (size_t e = 0; e < kNumEndpoints; ++e) {
    EndpointStats& s = totals[e];
    all_sent += s.sent;
    all_ok += s.ok_2xx;
    all_shed += s.shed_503;
    all_4xx += s.http_4xx;
    all_5xx += s.http_5xx;
    all_transport += s.transport_errors;
    all_checkpoints += s.checkpoints;
    all_cache_served += s.cache_served;
    std::sort(s.latencies_us.begin(), s.latencies_us.end());
    reporter.AddRow()
        .Set("endpoint", kEndpoints[e])
        .Set("requests", s.sent)
        .Set("ok", s.ok_2xx)
        .Set("shed", s.shed_503)
        .Set("http_4xx", s.http_4xx)
        .Set("http_5xx", s.http_5xx)
        .Set("transport_errors", s.transport_errors)
        .Set("cache_served", s.cache_served)
        .Set("p50_us", Percentile(s.latencies_us, 0.50))
        .Set("p99_us", Percentile(s.latencies_us, 0.99));
  }
  const uint64_t accounted =
      all_ok + all_shed + all_4xx + all_5xx + all_transport;
  const bool conserved = accounted == all_sent;
  bench::BenchReporter::Row& overall = reporter.AddRow();
  overall.Set("endpoint", "overall")
      .Set("requests", all_sent)
      .Set("ok", all_ok)
      .Set("shed", all_shed)
      .Set("http_4xx", all_4xx)
      .Set("http_5xx", all_5xx)
      .Set("transport_errors", all_transport)
      .Set("checkpoints", all_checkpoints)
      .Set("cache_served", all_cache_served)
      .Set("rps", elapsed_s > 0
                      ? static_cast<double>(all_sent) / elapsed_s
                      : 0.0)
      .Set("shed_rate_pct",
           all_sent > 0 ? 100.0 * static_cast<double>(all_shed) /
                              static_cast<double>(all_sent)
                        : 0.0)
      .Set("conservation_ok", conserved);
  if (daemon.pid > 0) {
    overall.Set("drain_time_ms", drain_ms).Set("daemon_exit", daemon_exit);
  }
  reporter.WriteJson();

  std::printf(
      "loadgen: %llu sent in %.2fs (%.0f rps): %llu ok, %llu shed, %llu "
      "4xx, %llu 5xx, %llu transport; %llu checkpoints; conservation %s\n",
      static_cast<unsigned long long>(all_sent), elapsed_s,
      all_sent > 0 ? static_cast<double>(all_sent) / elapsed_s : 0.0,
      static_cast<unsigned long long>(all_ok),
      static_cast<unsigned long long>(all_shed),
      static_cast<unsigned long long>(all_4xx),
      static_cast<unsigned long long>(all_5xx),
      static_cast<unsigned long long>(all_transport),
      static_cast<unsigned long long>(all_checkpoints),
      conserved ? "OK" : "VIOLATED");

  if (!conserved) {
    std::fprintf(stderr,
                 "loadgen: CONSERVATION VIOLATED: sent %llu != accounted "
                 "%llu\n",
                 static_cast<unsigned long long>(all_sent),
                 static_cast<unsigned long long>(accounted));
    return 1;
  }
  if (all_sent == all_transport) {
    std::fprintf(stderr, "loadgen: every request failed at transport\n");
    return 1;
  }
  if (daemon.pid > 0 && daemon_exit != 0) {
    std::fprintf(stderr, "loadgen: daemon exit %d (want 0)\n", daemon_exit);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace olapdc

int main(int argc, char** argv) { return olapdc::Run(argc, argv); }
