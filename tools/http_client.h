// Minimal blocking HTTP/1.1 loopback client shared by the load
// generator and the live-daemon chaos soak. One connection,
// keep-alive, Content-Length framing (which is all the server speaks).
// Every call either returns the response status or -1 (transport
// error); the caller reconnects. Deliberately tiny and test-oriented —
// not a general client.

#ifndef OLAPDC_TOOLS_HTTP_CLIENT_H_
#define OLAPDC_TOOLS_HTTP_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

namespace olapdc::tools {

class HttpClient {
 public:
  explicit HttpClient(int port) : port_(port) {}
  ~HttpClient() { Close(); }
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  bool Connect() {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    buffer_.clear();
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool connected() const { return fd_ >= 0; }

  /// POSTs `body` to `path`; returns the HTTP status (and the response
  /// body / Retry-After seconds through the out-params) or -1.
  int Post(const std::string& path, const std::string& body,
           std::string* response_body = nullptr,
           int64_t* retry_after_s = nullptr) {
    if (fd_ < 0 && !Connect()) return -1;
    std::string request = "POST " + path + " HTTP/1.1\r\n";
    request += "Host: localhost\r\n";
    request += "Content-Type: application/json\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    request += "\r\n";
    request += body;
    if (!SendAll(request)) {
      // Keep-alive races are legal: the server may have closed the
      // idle connection (request cap, drain). One reconnect retry.
      if (!Connect() || !SendAll(request)) return -1;
    }
    return ReadResponse(response_body, retry_after_s);
  }

  /// Sends raw bytes (hostile shapes bypass well-formed framing).
  bool SendRaw(const std::string& bytes) {
    if (fd_ < 0 && !Connect()) return false;
    return SendAll(bytes);
  }

  /// Reads one response off the connection. `read_timeout_ms` bounds
  /// each wait for more bytes.
  int ReadResponse(std::string* response_body = nullptr,
                   int64_t* retry_after_s = nullptr,
                   int read_timeout_ms = 10000) {
    std::string headers;
    while (true) {
      const size_t end = buffer_.find("\r\n\r\n");
      if (end != std::string::npos) {
        headers = buffer_.substr(0, end + 4);
        buffer_.erase(0, end + 4);
        break;
      }
      if (!Fill(read_timeout_ms)) return -1;
    }
    int status = -1;
    if (headers.compare(0, 5, "HTTP/") == 0) {
      const size_t sp = headers.find(' ');
      if (sp != std::string::npos) status = std::atoi(headers.c_str() + sp);
    }
    if (status < 100) return -1;
    size_t content_length = 0;
    bool close_after = false;
    size_t line_start = headers.find("\r\n") + 2;
    while (line_start < headers.size()) {
      size_t line_end = headers.find("\r\n", line_start);
      if (line_end == std::string::npos || line_end == line_start) break;
      std::string line = headers.substr(line_start, line_end - line_start);
      for (char& c : line) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (line.rfind("content-length:", 0) == 0) {
        content_length = static_cast<size_t>(
            std::strtoull(line.c_str() + 15, nullptr, 10));
      } else if (line.rfind("connection:", 0) == 0 &&
                 line.find("close") != std::string::npos) {
        close_after = true;
      } else if (line.rfind("retry-after:", 0) == 0 &&
                 retry_after_s != nullptr) {
        *retry_after_s = std::strtoll(line.c_str() + 12, nullptr, 10);
      }
      line_start = line_end + 2;
    }
    while (buffer_.size() < content_length) {
      if (!Fill(read_timeout_ms)) return -1;
    }
    if (response_body != nullptr) {
      *response_body = buffer_.substr(0, content_length);
    }
    buffer_.erase(0, content_length);
    if (close_after) Close();
    return status;
  }

 private:
  bool SendAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        Close();
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool Fill(int read_timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, read_timeout_ms) <= 0) {
      Close();
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Close();
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int port_;
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace olapdc::tools

#endif  // OLAPDC_TOOLS_HTTP_CLIENT_H_
