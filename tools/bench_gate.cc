// bench_gate — regression gate over the committed BENCH_*.json
// baselines (bench/bench_util.h reporters).
//
//   bench_gate --baseline BENCH_exec.json --current fresh.json \
//              [--default-threshold-pct 25] [--threshold ms=50] ...
//
// Rows are matched by index (the reporters emit a fixed grid in a
// deterministic order). Within a row, *latency-like* numeric fields —
// "ms", "us", "ns_per_task", or any field ending in _ms/_us/_ns —
// are gated lower-is-better: the gate fails when
//   current > baseline * (1 + threshold_pct / 100).
// Every other shared numeric field is reported informationally only
// (counters like expand_calls legitimately change with the workload,
// and throughput-like fields would need a higher-is-better gate —
// add a --threshold entry the day one matters).
//
// A second mode gates *robustness* reports instead of latency grids:
//
//   bench_gate --invariants <report.json>...
//
// accepts the chaos_campaign report format (BENCH_robustness.json,
// chaos_daemon_report.json) and fails unless "invariants_held" is true
// and "violations" is empty — so CI can block on "the chaos campaign
// found nothing" with the same binary that gates the latency
// baselines. When the report embeds a "crash_grid" object (the kill-9
// recovery grid from `chaos_campaign --crash`), that section's own
// "invariants_held" must also be true. Pass
// `--require-crash-grid <min_rounds>` before --invariants to make the
// section mandatory: a report without a crash grid, or with fewer
// rounds than the floor, fails the gate — so CI can insist the
// committed baseline actually ran the kill grid at scale instead of
// silently passing a sweep-only report.
//
// A third mode gates higher-is-better fields against an absolute
// floor (the latency gate is relative and lower-is-better, so ratios
// like a cache hit rate need their own direction):
//
//   bench_gate --current BENCH_cache.json --floor warm_hit_ratio=0.5
//
// Every row that carries the field must be >= the floor; a field that
// appears in no row is a usage error (a misspelled gate must not pass
// silently).
//
// Exit codes: 0 = within thresholds / invariants held, 1 = regression
// or violated invariant, 2 = usage or unreadable/ill-formed input.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "io/json_parse.h"

namespace olapdc::tools {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_gate --baseline <BENCH.json> --current <BENCH.json>\n"
      "                  [--default-threshold-pct <p>] "
      "[--threshold <field>=<p>]...\n"
      "       bench_gate [--require-crash-grid <min_rounds>] "
      "--invariants <report.json>...\n"
      "       bench_gate --current <BENCH.json> --floor <field>=<min>...\n"
      "gates latency-like fields (ms/us/ns_per_task/*_ms/*_us/*_ns) at\n"
      "current <= baseline * (1 + p/100); other numeric fields are\n"
      "reported but not gated. --invariants instead checks chaos\n"
      "campaign reports: \"invariants_held\" must be true with an empty\n"
      "\"violations\" array, and an embedded \"crash_grid\" section must\n"
      "itself hold; --require-crash-grid makes that section mandatory\n"
      "with at least <min_rounds> rounds. --floor gates higher-is-better\n"
      "fields: every row carrying the field must be >= the floor.\n"
      "exit codes: 0 within thresholds, 1 regression/violation, 2 "
      "usage/parse\n");
  return kExitUsage;
}

/// --invariants mode: every report must say invariants_held=true with
/// zero violations. A report embedding a "crash_grid" object (the
/// kill-9 grid from `chaos_campaign --crash`) must also hold inside
/// that section; with `require_crash_grid`, a report *without* the
/// section — or with fewer than `min_crash_rounds` rounds — fails, so
/// CI can insist the baseline actually exercised the kill grid.
int CheckInvariants(const std::vector<std::string>& paths,
                    bool require_crash_grid, double min_crash_rounds) {
  int bad = 0;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "bench_gate: cannot read '%s'\n", path.c_str());
      return kExitUsage;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    std::string error;
    if (!ParseJsonText(buffer.str(), &doc, &error) || !doc.is_object()) {
      std::fprintf(stderr, "bench_gate: '%s': %s\n", path.c_str(),
                   error.c_str());
      return kExitUsage;
    }
    const JsonValue* held = doc.Find("invariants_held");
    const JsonValue* violations = doc.Find("violations");
    if (held == nullptr || !held->is_bool() || violations == nullptr ||
        !violations->is_array()) {
      std::fprintf(stderr,
                   "bench_gate: '%s' is not an invariants report "
                   "(missing invariants_held / violations)\n",
                   path.c_str());
      return kExitUsage;
    }
    const JsonValue* crash_grid = doc.Find("crash_grid");
    bool crash_ok = true;
    if (crash_grid != nullptr) {
      if (!crash_grid->is_object()) {
        std::printf("  FAIL  %s: \"crash_grid\" is not an object\n",
                    path.c_str());
        crash_ok = false;
      } else {
        const JsonValue* grid_held = crash_grid->Find("invariants_held");
        const JsonValue* rounds = crash_grid->Find("rounds");
        const double n_rounds =
            rounds != nullptr && rounds->is_number() ? rounds->number_value : 0;
        if (grid_held == nullptr || !grid_held->is_bool() ||
            !grid_held->bool_value) {
          std::printf("  FAIL  %s: crash_grid invariants_held != true\n",
                      path.c_str());
          crash_ok = false;
        } else if (require_crash_grid && n_rounds < min_crash_rounds) {
          std::printf("  FAIL  %s: crash_grid rounds %g < required %g\n",
                      path.c_str(), n_rounds, min_crash_rounds);
          crash_ok = false;
        } else {
          std::printf("  ok    %s: crash_grid held (%g rounds)\n",
                      path.c_str(), n_rounds);
        }
      }
    } else if (require_crash_grid) {
      std::printf("  FAIL  %s: no \"crash_grid\" section but "
                  "--require-crash-grid was given\n",
                  path.c_str());
      crash_ok = false;
    }
    if (held->bool_value && violations->array.empty() && crash_ok) {
      std::printf("  ok    %s: invariants held\n", path.c_str());
      continue;
    }
    ++bad;
    std::printf("  FAIL  %s: %zu violation(s), invariants_held=%s\n",
                path.c_str(), violations->array.size(),
                held->bool_value ? "true" : "false");
    for (const JsonValue& v : violations->array) {
      const JsonValue* what = v.Find("what");
      const JsonValue* site = v.Find("site");
      std::printf("        [%s] %s\n",
                  site != nullptr && site->is_string()
                      ? site->string_value.c_str()
                      : "?",
                  what != nullptr && what->is_string()
                      ? what->string_value.c_str()
                      : "(unstructured violation)");
    }
  }
  std::printf("bench_gate: %zu report(s), %d with violations\n", paths.size(),
              bad);
  return bad > 0 ? kExitRegression : kExitOk;
}

bool LatencyLike(const std::string& field) {
  if (field == "ms" || field == "us" || field == "ns_per_task") return true;
  auto ends_with = [&](const char* suffix) {
    const size_t n = std::char_traits<char>::length(suffix);
    return field.size() >= n &&
           field.compare(field.size() - n, n, suffix) == 0;
  };
  return ends_with("_ms") || ends_with("_us") || ends_with("_ns");
}

/// A short row label from the row's string/integer identity fields
/// (mode, workload, threads, ...), so a report line names the grid
/// point, not just "row 7".
std::string RowLabel(const JsonValue& row) {
  std::string label;
  for (const auto& [key, value] : row.object) {
    if (value.is_string()) {
      if (!label.empty()) label += " ";
      label += key + "=" + value.string_value;
    } else if (value.is_number() && !LatencyLike(key) &&
               (key == "threads" || key == "seed" || key == "size")) {
      if (!label.empty()) label += " ";
      std::ostringstream num;
      num << value.number_value;
      label += key + "=" + num.str();
    }
  }
  return label;
}

bool LoadBench(const std::string& path, JsonValue* out, std::string* bench,
               const JsonValue** rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_gate: cannot read '%s'\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!ParseJsonText(buffer.str(), out, &error)) {
    std::fprintf(stderr, "bench_gate: '%s': %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  const JsonValue* name = out->Find("bench");
  *bench = (name != nullptr && name->is_string()) ? name->string_value : "?";
  *rows = out->Find("rows");
  if (*rows == nullptr || !(*rows)->is_array()) {
    std::fprintf(stderr, "bench_gate: '%s' has no \"rows\" array\n",
                 path.c_str());
    return false;
  }
  return true;
}

/// --floor mode: every row of `path` that carries a floored field must
/// be >= the floor. Higher-is-better, absolute — the complement of the
/// relative lower-is-better latency gate.
int CheckFloors(const std::string& path,
                const std::map<std::string, double>& floors) {
  JsonValue doc;
  std::string bench;
  const JsonValue* rows = nullptr;
  if (!LoadBench(path, &doc, &bench, &rows)) return kExitUsage;
  int failures = 0;
  for (const auto& [field, min_value] : floors) {
    int checked = 0;
    int exempt = 0;
    for (size_t i = 0; i < rows->array.size(); ++i) {
      const JsonValue* value = rows->array[i].Find(field);
      if (value == nullptr || !value->is_number()) continue;
      ++checked;
      // Rows may self-exempt from floors when the claim is unmeasurable
      // on the producing host: "single_core_host" (no parallel speedup
      // physically possible) or the generic "floor_exempt" (e.g. SIMD
      // speedups on machines without the vector unit). Failing the gate
      // there would punish the machine, not catch a regression.
      const JsonValue* single = rows->array[i].Find("single_core_host");
      const JsonValue* generic = rows->array[i].Find("floor_exempt");
      const bool exempted =
          (single != nullptr && single->is_bool() && single->bool_value) ||
          (generic != nullptr && generic->is_bool() && generic->bool_value);
      if (exempted) {
        ++exempt;
        std::printf("  skip  %s[%zu]: %s %g (host-exempt row)\n",
                    bench.c_str(), i, field.c_str(), value->number_value);
        continue;
      }
      if (value->number_value < min_value) {
        ++failures;
        std::printf("  FAIL  %s[%zu]: %s %g < floor %g\n", bench.c_str(), i,
                    field.c_str(), value->number_value, min_value);
      } else {
        std::printf("  ok    %s[%zu]: %s %g >= floor %g\n", bench.c_str(), i,
                    field.c_str(), value->number_value, min_value);
      }
    }
    if (checked == 0) {
      std::fprintf(stderr,
                   "bench_gate: no row in '%s' carries field '%s' — a "
                   "misspelled floor must not pass silently\n",
                   path.c_str(), field.c_str());
      return kExitUsage;
    }
    if (exempt == checked) {
      std::printf("  note  %s: every '%s' row is host-exempt — floor "
                  "not enforced on this machine\n",
                  bench.c_str(), field.c_str());
    }
  }
  std::printf("bench_gate: %s: %zu floor(s), %d failure(s)\n", bench.c_str(),
              floors.size(), failures);
  return failures > 0 ? kExitRegression : kExitOk;
}

int Run(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double default_threshold_pct = 25;
  std::map<std::string, double> per_field_pct;
  std::map<std::string, double> floors;
  bool require_crash_grid = false;
  double min_crash_rounds = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--invariants") {
      std::vector<std::string> paths;
      for (++i; i < argc; ++i) paths.emplace_back(argv[i]);
      if (paths.empty()) return Usage();
      return CheckInvariants(paths, require_crash_grid, min_crash_rounds);
    } else if (arg == "--require-crash-grid") {
      const char* v = next();
      if (v == nullptr) return Usage();
      char* end = nullptr;
      min_crash_rounds = std::strtod(v, &end);
      if (end == v || *end != '\0' || min_crash_rounds < 1) return Usage();
      require_crash_grid = true;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return Usage();
      baseline_path = v;
    } else if (arg == "--current") {
      const char* v = next();
      if (v == nullptr) return Usage();
      current_path = v;
    } else if (arg == "--default-threshold-pct") {
      const char* v = next();
      if (v == nullptr) return Usage();
      char* end = nullptr;
      default_threshold_pct = std::strtod(v, &end);
      if (end == v || *end != '\0' || default_threshold_pct < 0) {
        return Usage();
      }
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return Usage();
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage();
      char* end = nullptr;
      const double pct = std::strtod(spec.c_str() + eq + 1, &end);
      if (*end != '\0' || pct < 0) return Usage();
      per_field_pct[spec.substr(0, eq)] = pct;
    } else if (arg == "--floor") {
      const char* v = next();
      if (v == nullptr) return Usage();
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage();
      char* end = nullptr;
      const double min_value = std::strtod(spec.c_str() + eq + 1, &end);
      if (end == spec.c_str() + eq + 1 || *end != '\0') return Usage();
      floors[spec.substr(0, eq)] = min_value;
    } else {
      return Usage();
    }
  }
  if (!floors.empty()) {
    if (baseline_path.empty() && !current_path.empty()) {
      return CheckFloors(current_path, floors);
    }
    return Usage();
  }
  if (baseline_path.empty() || current_path.empty()) return Usage();

  JsonValue baseline_doc, current_doc;
  std::string baseline_bench, current_bench;
  const JsonValue* baseline_rows = nullptr;
  const JsonValue* current_rows = nullptr;
  if (!LoadBench(baseline_path, &baseline_doc, &baseline_bench,
                 &baseline_rows) ||
      !LoadBench(current_path, &current_doc, &current_bench, &current_rows)) {
    return kExitUsage;
  }
  if (baseline_bench != current_bench) {
    std::fprintf(stderr,
                 "bench_gate: bench mismatch: baseline '%s' vs current "
                 "'%s'\n",
                 baseline_bench.c_str(), current_bench.c_str());
    return kExitUsage;
  }
  if (baseline_rows->array.size() != current_rows->array.size()) {
    std::fprintf(stderr,
                 "bench_gate: row count mismatch: baseline %zu vs current "
                 "%zu (grid changed — recommit the baseline)\n",
                 baseline_rows->array.size(), current_rows->array.size());
    return kExitUsage;
  }

  int regressions = 0;
  int gated_fields = 0;
  for (size_t i = 0; i < baseline_rows->array.size(); ++i) {
    const JsonValue& base_row = baseline_rows->array[i];
    const JsonValue& curr_row = current_rows->array[i];
    const std::string label = RowLabel(base_row);
    for (const auto& [field, base_value] : base_row.object) {
      if (!base_value.is_number()) continue;
      const JsonValue* curr_value = curr_row.Find(field);
      if (curr_value == nullptr || !curr_value->is_number()) continue;
      const double base = base_value.number_value;
      const double curr = curr_value->number_value;
      if (!LatencyLike(field)) {
        if (base != curr) {
          std::printf("  info  %s[%zu] %s: %s %g -> %g (not gated)\n",
                      baseline_bench.c_str(), i, label.c_str(), field.c_str(),
                      base, curr);
        }
        continue;
      }
      ++gated_fields;
      const auto it = per_field_pct.find(field);
      const double pct =
          it != per_field_pct.end() ? it->second : default_threshold_pct;
      if (base > 0 && curr > base * (1 + pct / 100)) {
        ++regressions;
        std::printf("  FAIL  %s[%zu] %s: %s %g -> %g (+%.1f%% > %.1f%%)\n",
                    baseline_bench.c_str(), i, label.c_str(), field.c_str(),
                    base, curr, (curr / base - 1) * 100, pct);
      } else {
        std::printf("  ok    %s[%zu] %s: %s %g -> %g\n",
                    baseline_bench.c_str(), i, label.c_str(), field.c_str(),
                    base, curr);
      }
    }
  }
  std::printf("bench_gate: %s: %d gated field(s), %d regression(s)\n",
              baseline_bench.c_str(), gated_fields, regressions);
  return regressions > 0 ? kExitRegression : kExitOk;
}

}  // namespace
}  // namespace olapdc::tools

int main(int argc, char** argv) { return olapdc::tools::Run(argc, argv); }
