#!/usr/bin/env bash
# Documentation lint, run by the CI `docs` job and locally via
#   tools/check_docs.sh
# from the repository root. Four checks:
#   1. Every relative markdown link in README.md, DESIGN.md,
#      EXPERIMENTS.md and docs/*.md resolves to a file in the repo.
#   2. Every src/<subsystem>/ directory is mentioned in DESIGN.md's
#      repository-layout section, so the architecture docs cannot
#      silently fall behind the tree.
#   3. Every tool binary declared in tools/CMakeLists.txt is mentioned
#      in README.md or docs/, so shipped tools cannot go undocumented.
#   4. Every /v1/* endpoint in the DimService route table
#      (src/service/dim_service.cc) appears in docs/service.md, so a
#      new endpoint cannot ship without its reference entry.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

fail=0

# --- 1. Relative links resolve -------------------------------------------
# Matches [text](target) and keeps targets that are not URLs/anchors.
doc_files=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)
for doc in "${doc_files[@]}"; do
  [ -f "$doc" ] || continue
  doc_dir="$(dirname "$doc")"
  # One target per line; strip #fragments.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*|"") continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$doc_dir/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -e 's/^](//' -e 's/)$//')
done

# --- 2. Every src subsystem is documented in DESIGN.md -------------------
for dir in src/*/; do
  subsystem="${dir%/}"
  if ! grep -q "$subsystem/" DESIGN.md; then
    echo "UNDOCUMENTED SUBSYSTEM: $subsystem/ is not mentioned in DESIGN.md"
    fail=1
  fi
done

# --- 3. Every tools/ binary is documented ---------------------------------
while IFS= read -r tool; do
  # The CLI target is olapdc_cli but ships as `olapdc`.
  [ "$tool" = "olapdc_cli" ] && tool=olapdc
  if ! grep -q "$tool" README.md docs/*.md; then
    echo "UNDOCUMENTED TOOL: $tool is not mentioned in README.md or docs/"
    fail=1
  fi
done < <(grep -oE '^add_executable\([a-z0-9_]+' tools/CMakeLists.txt |
         sed 's/^add_executable(//')

# --- 4. Every /v1/* endpoint is documented in docs/service.md ------------
if [ ! -f docs/service.md ]; then
  echo "MISSING DOC: docs/service.md (the /v1/* endpoint reference)"
  fail=1
else
  while IFS= read -r endpoint; do
    if ! grep -qF "$endpoint" docs/service.md; then
      echo "UNDOCUMENTED ENDPOINT: $endpoint is not in docs/service.md"
      fail=1
    fi
  done < <(grep -oE '"/v1/[a-z_]+"' src/service/dim_service.cc |
           tr -d '"' | sort -u)
fi

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
