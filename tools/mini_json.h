// Minimal recursive-descent JSON parser for the *tools* (bench_gate,
// trace2perfetto). The olapdc library itself only ever writes JSON
// (src/obs/json.h); the tools consume what the library and the bench
// reporters emitted, so they carry their own parser rather than
// dragging a dependency into the library layering.
//
// Scope: strict enough for our own output — objects, arrays, strings
// with the escapes JsonEscape produces (\" \\ \n \r \t \u00XX),
// numbers via strtod, true/false/null. Not a general-purpose
// validating parser (no surrogate pairs, no depth limit beyond the
// call stack).

#ifndef OLAPDC_TOOLS_MINI_JSON_H_
#define OLAPDC_TOOLS_MINI_JSON_H_

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace olapdc::tools {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Insertion-ordered so reports list fields the way the reporter
  /// wrote them.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace mini_json_internal {

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') return Fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos >= text.size()) return Fail("dangling escape");
      char esc = text[pos++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Our writer only emits \u00XX control characters; encode
          // anything in the BMP as UTF-8 anyway.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    if (pos >= text.size()) return Fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out->type = JsonValue::Type::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return Fail("expected ':'");
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        if (Consume('}')) return true;
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->type = JsonValue::Type::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        if (Consume(']')) return true;
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos += 4;
      return true;
    }
    // Number.
    const char* start = text.data() + pos;
    char* end = nullptr;
    double value = std::strtod(start, &end);
    if (end == start) return Fail("unexpected token");
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    pos += static_cast<size_t>(end - start);
    return true;
  }
};

}  // namespace mini_json_internal

/// Parses `text` into `*out`. On failure returns false with a
/// position-annotated message in `*error` (when non-null).
inline bool ParseJson(std::string_view text, JsonValue* out,
                      std::string* error = nullptr) {
  mini_json_internal::Parser parser{text, 0, {}};
  if (!parser.ParseValue(out)) {
    if (error != nullptr) *error = parser.error;
    return false;
  }
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(parser.pos);
    }
    return false;
  }
  return true;
}

}  // namespace olapdc::tools

#endif  // OLAPDC_TOOLS_MINI_JSON_H_
