// trace2perfetto — converts a TraceSink JSONL span capture (the CLI's
// `--trace <path>` output; one completed span per line with id,
// parent, thread, depth, start_us, dur_us, stats) into Chrome
// trace_event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
//   trace2perfetto <trace.jsonl> [<out.json>]     (default: stdout)
//
// Each span becomes a "X" (complete) event on its recording thread's
// track; span stats, id, and parent ride along in args, so the
// parentage stitched across work-steals (obs/span.h) is inspectable
// in the UI. Lines that fail to parse are skipped with a warning —
// a truncated capture (process killed mid-write) still converts.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "io/json_parse.h"

namespace olapdc::tools {
namespace {

/// Re-renders a parsed JSON value (only the shapes span stats use:
/// scalars) back to JSON text for the args object.
std::string RenderScalar(const JsonValue& value) {
  switch (value.type) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return value.bool_value ? "true" : "false";
    case JsonValue::Type::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", value.number_value);
      return buf;
    }
    case JsonValue::Type::kString: {
      std::string out = "\"";
      for (char c : value.string_value) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      return out + "\"";
    }
    default: return "null";
  }
}

int Run(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: trace2perfetto <trace.jsonl> [<out.json>]\n"
                 "converts olapdc --trace output to Chrome trace_event "
                 "JSON (open in ui.perfetto.dev)\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "trace2perfetto: cannot read '%s'\n", argv[1]);
    return 2;
  }

  std::ostringstream events;
  bool first = true;
  size_t lineno = 0;
  size_t skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue span;
    std::string error;
    if (!ParseJsonText(line, &span, &error) || !span.is_object()) {
      std::fprintf(stderr, "trace2perfetto: skipping line %zu: %s\n", lineno,
                   error.c_str());
      ++skipped;
      continue;
    }
    const JsonValue* name = span.Find("name");
    const JsonValue* start = span.Find("start_us");
    const JsonValue* dur = span.Find("dur_us");
    const JsonValue* thread = span.Find("thread");
    if (name == nullptr || !name->is_string() || start == nullptr ||
        !start->is_number() || dur == nullptr || !dur->is_number()) {
      std::fprintf(stderr,
                   "trace2perfetto: skipping line %zu: not a span record\n",
                   lineno);
      ++skipped;
      continue;
    }
    if (!first) events << ",\n";
    first = false;
    events << "{\"name\": " << RenderScalar(*name)
           << ", \"ph\": \"X\", \"ts\": " << RenderScalar(*start)
           << ", \"dur\": " << RenderScalar(*dur) << ", \"pid\": 1"
           << ", \"tid\": "
           << (thread != nullptr && thread->is_number()
                   ? RenderScalar(*thread)
                   : "0")
           << ", \"args\": {";
    bool first_arg = true;
    for (const char* key : {"id", "parent", "depth"}) {
      const JsonValue* value = span.Find(key);
      if (value == nullptr) continue;
      if (!first_arg) events << ", ";
      first_arg = false;
      events << "\"" << key << "\": " << RenderScalar(*value);
    }
    const JsonValue* stats = span.Find("stats");
    if (stats != nullptr && stats->is_object()) {
      for (const auto& [key, value] : stats->object) {
        if (!first_arg) events << ", ";
        first_arg = false;
        events << "\"" << key << "\": " << RenderScalar(value);
      }
    }
    events << "}}";
  }

  const std::string payload =
      "{\"traceEvents\": [\n" + events.str() + "\n]}\n";
  if (argc == 3) {
    std::ofstream out(argv[2], std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "trace2perfetto: cannot write '%s'\n", argv[2]);
      return 2;
    }
    out << payload;
  } else {
    std::cout << payload;
  }
  if (skipped > 0) {
    std::fprintf(stderr, "trace2perfetto: %zu line(s) skipped\n", skipped);
  }
  return 0;
}

}  // namespace
}  // namespace olapdc::tools

int main(int argc, char** argv) { return olapdc::tools::Run(argc, argv); }
