// chaos_campaign — the robustness sweep harness (docs/robustness.md).
//
// Sweeps every registered fault-injection site × a probability grid ×
// the budget configurations over generated workloads, driving the
// request shapes a deployment actually runs (sequential DIMSAT with
// checkpoint/resume, admission-gated parallel DIMSAT, the Reasoner
// ladder, the parse boundary) and asserting the crash-proof-lifecycle
// invariants on every run:
//
//   1. no crash / no hang (the harness itself finishing is the check;
//      ASan/UBSan builds add memory-safety teeth);
//   2. taxonomy-only failures: a run's status is OK, the injected
//      code, or a budget/overload code — never an unclassified error;
//   3. no wrong witness: a SATISFIABLE verdict always carries a frozen
//      dimension that passes full C1-C7 + Sigma validation
//      (FrozenDimension::ToInstance), faults or not;
//   4. no phantom result: a faulted run that reports SATISFIABLE is
//      confirmed by the unfaulted baseline;
//   5. the pool drains: every run returns with no in-flight admission
//      and the per-request memory accounting back at zero;
//   6. metrics stay consistent: at campaign quiescence, reserved ==
//      released bytes, and armed cells actually injected.
//
// Exit code 0 = every invariant held on every run; 1 = violations
// (detailed in the JSON report and on stderr).
//
// Flags:
//   --runs-per-cell <n>   workload runs per (site, prob, budget) cell
//   --seeds <n>           distinct workload seeds (cycled over runs)
//   --out <path>          JSON report path (default BENCH_robustness.json;
//                         daemon mode: chaos_daemon_report.json)
//   --quick               CI smoke grid: prob 0.5 only, two budget
//                         configs, two runs per cell
//
// Live-daemon soak (--daemon): instead of the in-process sweep, stand
// up the full olapdcd stack (SchemaRegistry + AdmissionGate +
// DimService behind the hardened HttpServer on a real loopback port),
// arm EVERY registered fault site inside the serving threads, and
// hammer it with concurrent clients running the mixed request shapes
// (check / implies / summarizable / batch, tiny deadlines that force
// the checkpoint path, schema re-registration mid-flight, malformed
// JSON, unknown schemas, oversized bodies, truncated POSTs, garbage
// request lines) — then drain gracefully and assert the lifecycle
// invariants from the outside:
//   - every response is in the documented status taxonomy
//     (200/400/404/405/408/413/500/503), never a crash or a hang;
//   - client-side conservation: every request sent is accounted as
//     exactly one of {2xx, shed, other 4xx/5xx, transport error};
//   - server-side conservation: requests == ok + errors + shed at
//     quiescence;
//   - drain completes within the deadline with the admission gate idle
//     and memory accounting back at zero.
//
//   --daemon-duration-ms <n>   load phase length (default 4000)
//   --daemon-min-requests <n>  keep hammering until this many sent
//                              (default 1200)
//   --daemon-prob <p>          per-site injection probability (0.05)
//   --daemon-threads <n>       client threads (default 4)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/fault_injector.h"
#include "common/memory_budget.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/reasoner.h"
#include "exec/admission.h"
#include "exec/work_stealing_pool.h"
#include "io/instance_io.h"
#include "io/schema_io.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/dim_service.h"
#include "service/schema_registry.h"
#include "tools/http_client.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

struct Workload {
  DimensionSchema ds;
  CategoryId root = 0;
  bool satisfiable = false;
  std::string schema_text;
  /// Serialized witness instance (only when satisfiable).
  std::string instance_text;
};

/// Generates workload `seed` and computes its unfaulted ground truth.
/// Must be called with the injector disarmed.
Result<Workload> MakeWorkload(int seed) {
  // Large enough that parallel runs actually keep the pool busy (the
  // exec.steal / exec.group_wait sites only probe when workers contend
  // for work), small enough that the full grid stays in seconds.
  SchemaGenOptions schema_options;
  schema_options.num_levels = 4;
  schema_options.categories_per_level = 3;
  schema_options.extra_edge_prob = 0.35;
  schema_options.seed = static_cast<uint64_t>(seed) * 7919 + 5;
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr hierarchy,
                          GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = static_cast<uint64_t>(seed);
  OLAPDC_ASSIGN_OR_RETURN(
      DimensionSchema ds,
      GenerateConstrainedSchema(hierarchy, constraint_options));

  Workload w{std::move(ds), /*root=*/0, /*satisfiable=*/false, {}, {}};
  OLAPDC_ASSIGN_OR_RETURN(w.root, w.ds.hierarchy().CategoryIdOf("Base"));
  DimsatResult truth = Dimsat(w.ds, w.root, {});
  OLAPDC_RETURN_NOT_OK(truth.status);
  w.satisfiable = truth.satisfiable;
  w.schema_text = SerializeSchema(w.ds);
  if (truth.satisfiable) {
    OLAPDC_ASSIGN_OR_RETURN(DimensionInstance instance,
                            truth.frozen.front().ToInstance(w.ds));
    w.instance_text = SerializeInstance(instance);
  }
  return w;
}

/// One budget configuration of the sweep.
struct BudgetConfig {
  const char* name;
  int64_t deadline_ms = -1;        // <0: none
  uint64_t max_expand_calls = 0;   // 0: unlimited
  uint64_t memory_bytes = 0;       // 0: none
};

constexpr BudgetConfig kBudgetConfigs[] = {
    {"unbounded"},
    {"deadline-5ms", 5},
    {"expand-cap-64", -1, 64},
    {"memory-32k", -1, 0, 32 * 1024},
};

constexpr double kProbabilities[] = {0.01, 0.1, 0.5};

bool IsParseSite(const std::string& site) {
  return site == "schema_io.parse" || site == "instance_io.parse";
}

/// Outcome of one request run under injection.
struct RunOutcome {
  Status status;
  bool reported_satisfiable = false;
  /// Every frozen dimension the run reported (validated by the caller).
  std::vector<FrozenDimension> frozen;
};

/// The request shapes, rotated per run. Each receives a fully
/// configured budget (deadline / expand cap / memory) and must return
/// whatever status the public API surfaced.
RunOutcome RunSequentialWithResume(const Workload& w,
                                   DimsatOptions options) {
  RunOutcome out;
  DimsatCheckpoint cp;
  options.num_threads = 1;
  options.checkpoint = &cp;
  DimsatResult r = Dimsat(w.ds, w.root, options);
  out.status = r.status;
  out.reported_satisfiable = r.satisfiable;
  for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
  // Bounded resume chain: under injected faults progress is
  // probabilistic, so the chain is capped — robustness invariants are
  // the claim here, exact resume equivalence is checkpoint_test's.
  for (int link = 0; link < 8 && !cp.empty(); ++link) {
    DimsatCheckpoint from = std::move(cp);
    cp.frames.clear();
    DimsatResult next = ResumeDimsat(w.ds, w.root, options, std::move(from));
    out.status = next.status;
    out.reported_satisfiable |= next.satisfiable;
    for (FrozenDimension& f : next.frozen) out.frozen.push_back(std::move(f));
  }
  return out;
}

RunOutcome RunParallelAdmitted(const Workload& w, DimsatOptions options,
                               exec::WorkStealingPool* pool,
                               exec::AdmissionGate* gate) {
  RunOutcome out;
  options.num_threads = pool->num_threads();
  options.pool = pool;
  options.admission = gate;
  DimsatResult r = DimsatParallel(w.ds, w.root, options, pool->num_threads());
  out.status = r.status;
  out.reported_satisfiable = r.satisfiable;
  for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
  return out;
}

RunOutcome RunReasonerLadder(const Workload& w, const DimsatOptions& base,
                             const Budget* budget) {
  RunOutcome out;
  ReasonerOptions options;
  options.dimsat = base;
  options.dimsat.num_threads = 1;
  options.initial_expand_budget = 16;
  options.max_attempts = 6;
  options.retry.max_retries = 2;
  options.retry.initial_backoff_ms = 0.1;
  Reasoner reasoner(w.ds, options);
  ReasonerAnswer answer = reasoner.QuerySatisfiable(w.root, budget);
  out.status = answer.reason;
  out.reported_satisfiable = answer.truth == Truth::kYes;
  return out;
}

/// Nested parallel request: a pool task that itself runs DimsatParallel
/// on the same pool (the shape of a parallel summarizability sweep,
/// where per-bottom tasks fan out further). The inner search's
/// TaskGroup::Wait then runs on a pool *worker*, driving the
/// worker-thread helping path — the exec.group_wait site.
RunOutcome RunNestedParallel(const Workload& w, DimsatOptions options,
                             exec::WorkStealingPool* pool) {
  RunOutcome out;
  options.num_threads = pool->num_threads();
  options.pool = pool;
  {
    exec::TaskGroup group(pool);
    group.Spawn([&] {
      DimsatResult r =
          DimsatParallel(w.ds, w.root, options, options.num_threads);
      out.status = std::move(r.status);
      out.reported_satisfiable = r.satisfiable;
      for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
    });
    group.Wait();
  }
  return out;
}

RunOutcome RunParseBoundary(const Workload& w, const Budget* budget) {
  RunOutcome out;
  Result<DimensionSchema> schema = ParseSchemaText(w.schema_text, budget);
  if (!schema.ok()) {
    out.status = schema.status();
    return out;
  }
  if (!w.instance_text.empty()) {
    Result<DimensionInstance> instance = ParseInstanceText(
        schema->hierarchy_ptr(), w.instance_text, false, budget);
    if (!instance.ok()) out.status = instance.status();
  }
  return out;
}

struct Violation {
  std::string site;
  double probability;
  std::string budget;
  int run;
  std::string what;
};

struct Campaign {
  uint64_t total_runs = 0;
  uint64_t total_cells = 0;
  uint64_t injected_failures = 0;
  uint64_t reported_sat = 0;
  uint64_t degraded = 0;  // non-OK statuses (taxonomy-conforming)
  std::vector<Violation> violations;
  std::map<std::string, uint64_t> runs_per_site;
  std::map<std::string, uint64_t> failures_per_site;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool WriteReport(const std::string& path, const Campaign& c, bool quick,
                 int runs_per_cell, int seeds) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmark\": \"chaos_campaign\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"runs_per_cell\": %d,\n  \"workload_seeds\": %d,\n",
               runs_per_cell, seeds);
  std::fprintf(f, "  \"cells\": %llu,\n  \"total_runs\": %llu,\n",
               static_cast<unsigned long long>(c.total_cells),
               static_cast<unsigned long long>(c.total_runs));
  std::fprintf(f, "  \"injected_failures\": %llu,\n",
               static_cast<unsigned long long>(c.injected_failures));
  std::fprintf(f, "  \"reported_satisfiable\": %llu,\n",
               static_cast<unsigned long long>(c.reported_sat));
  std::fprintf(f, "  \"degraded_runs\": %llu,\n",
               static_cast<unsigned long long>(c.degraded));
  std::fprintf(f, "  \"sites\": {\n");
  bool first = true;
  for (const auto& [site, runs] : c.runs_per_site) {
    std::fprintf(f, "%s    \"%s\": {\"runs\": %llu, \"injected\": %llu}",
                 first ? "" : ",\n", JsonEscape(site).c_str(),
                 static_cast<unsigned long long>(runs),
                 static_cast<unsigned long long>(
                     c.failures_per_site.count(site)
                         ? c.failures_per_site.at(site)
                         : 0));
    first = false;
  }
  std::fprintf(f, "\n  },\n");
  std::fprintf(f, "  \"violations\": [");
  for (size_t i = 0; i < c.violations.size(); ++i) {
    const Violation& v = c.violations[i];
    std::fprintf(f,
                 "%s\n    {\"site\": \"%s\", \"probability\": %g, "
                 "\"budget\": \"%s\", \"run\": %d, \"what\": \"%s\"}",
                 i == 0 ? "" : ",", JsonEscape(v.site).c_str(), v.probability,
                 JsonEscape(v.budget).c_str(), v.run,
                 JsonEscape(v.what).c_str());
  }
  std::fprintf(f, "%s],\n", c.violations.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"invariants_held\": %s\n}\n",
               c.violations.empty() ? "true" : "false");
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------------
// Live-daemon soak (--daemon)
// ---------------------------------------------------------------------------

struct DaemonSoakConfig {
  int64_t duration_ms = 4000;
  uint64_t min_requests = 1200;
  double prob = 0.05;
  int client_threads = 4;
  int seeds = 3;
  std::string out_path = "chaos_daemon_report.json";
};

struct ClientTally {
  uint64_t sent = 0;
  uint64_t ok_2xx = 0;
  uint64_t shed_503 = 0;
  uint64_t other_4xx = 0;
  uint64_t other_5xx = 0;
  uint64_t transport = 0;
  uint64_t checkpoints = 0;
  uint64_t nondefinitive = 0;
  std::map<int, uint64_t> statuses;
  std::vector<int> unexpected_statuses;

  void Merge(const ClientTally& o) {
    sent += o.sent;
    ok_2xx += o.ok_2xx;
    shed_503 += o.shed_503;
    other_4xx += o.other_4xx;
    other_5xx += o.other_5xx;
    transport += o.transport;
    checkpoints += o.checkpoints;
    nondefinitive += o.nondefinitive;
    for (const auto& [code, n] : o.statuses) statuses[code] += n;
    unexpected_statuses.insert(unexpected_statuses.end(),
                               o.unexpected_statuses.begin(),
                               o.unexpected_statuses.end());
  }
};

/// One request shape of the soak mix.
struct SoakShape {
  std::string path;
  std::string body;
  bool raw = false;           // raw bytes instead of a framed POST
  bool expect_no_reply = false;  // client closes mid-request
  std::string raw_bytes;
};

std::vector<SoakShape> BuildSoakShapes(const std::vector<Workload>& workloads,
                                       size_t max_body_bytes) {
  std::vector<SoakShape> shapes;
  auto add = [&shapes](const char* path, std::string body) {
    SoakShape shape;
    shape.path = path;
    shape.body = std::move(body);
    shapes.push_back(std::move(shape));
  };
  auto check = [](const std::string& schema, const char* extra = "") {
    return "{\"schema\": \"" + schema +
           "\", \"category\": \"Base\", \"deadline_ms\": 250" + extra + "}";
  };
  for (size_t k = 0; k < workloads.size(); ++k) {
    const std::string name = "w" + std::to_string(k);
    add("/v1/check", check(name));
    // threads: 2 routes through the work-stealing pool — the exec.*
    // fault sites fire inside the serving thread's parallel run.
    add("/v1/check", check(name, ", \"threads\": 2"));
    // A 1ms deadline expires mid-search: 200 with "definitive": false
    // and (sequentially) a resumable checkpoint — the degraded mode.
    add("/v1/check", "{\"schema\": \"" + name +
                         "\", \"category\": \"Base\", \"deadline_ms\": 1}");
    // Re-registration races against in-flight reasoning on the same
    // name — the shared_ptr snapshot isolation under test.
    add("/v1/schemas", "{\"name\": \"" + name + "\", \"text\": " +
                           obs::JsonString(workloads[k].schema_text) + "}");
  }
  // The paper's location example: implies / summarizable / batch.
  add("/v1/implies",
      "{\"schema\": \"loc\", \"constraint\": \"Store/City\"}");
  add("/v1/summarizable",
      "{\"schema\": \"loc\", \"category\": \"Country\", "
      "\"sources\": [\"Store\"]}");
  add("/v1/batch",
      "{\"requests\": [{\"op\": \"check\", \"schema\": \"loc\", "
      "\"category\": \"Store\"}, {\"op\": \"implies\", \"schema\": "
      "\"loc\", \"constraint\": \"Store/City\"}, {\"op\": "
      "\"summarizable\", \"schema\": \"loc\", \"category\": "
      "\"Country\", \"sources\": [\"Store\"]}]}");
  // Hostile shapes — each must be a clean 4xx/405, never a crash.
  add("/v1/check", "{\"schema\": \"loc\", ");  // 400
  add("/v1/check", "{\"schema\": \"no-such\", \"category\": \"Base\"}");
  add("/v1/nonsense", "{}");  // 404
  add("/v1/check",
      "{\"schema\": \"loc\", \"category\": \"Base\", \"deadline_ms\": "
      "\"soon\"}");  // mistyped field -> 400
  add("/v1/check", std::string("{\"pad\": \"") +
                       std::string(max_body_bytes + 1024, 'x') +
                       "\"}");  // 413
  SoakShape get;  // GET on the request plane -> 405
  get.raw = true;
  get.raw_bytes = "GET /v1/check HTTP/1.1\r\nHost: x\r\n\r\n";
  shapes.push_back(get);
  SoakShape garbage;  // malformed request line -> 400, connection closed
  garbage.raw = true;
  garbage.raw_bytes = "EXPLODE now\r\n\r\n";
  shapes.push_back(garbage);
  SoakShape truncated;  // promises 100 bytes, delivers 9, hangs up
  truncated.raw = true;
  truncated.expect_no_reply = true;
  truncated.raw_bytes =
      "POST /v1/check HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n"
      "{\"trunc\":";
  shapes.push_back(truncated);
  return shapes;
}

void SoakWorker(int port, const std::vector<SoakShape>& shapes, size_t offset,
                int64_t deadline_us, uint64_t min_requests,
                std::atomic<uint64_t>* global_sent,
                std::atomic<bool>* stop, ClientTally* out) {
  auto now_us = [] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  tools::HttpClient client(port);
  size_t next = offset;
  while (!stop->load(std::memory_order_relaxed) &&
         (now_us() < deadline_us ||
          global_sent->load(std::memory_order_relaxed) < min_requests)) {
    const SoakShape& shape = shapes[next++ % shapes.size()];
    ++out->sent;
    global_sent->fetch_add(1, std::memory_order_relaxed);
    int status = -1;
    std::string body;
    if (shape.raw) {
      if (shape.expect_no_reply) {
        // Truncated POST: hang up mid-body. No response is owed; the
        // server must simply survive (and count a bad request).
        client.SendRaw(shape.raw_bytes);
        client.Close();
        ++out->transport;
        continue;
      }
      if (client.SendRaw(shape.raw_bytes)) {
        status = client.ReadResponse(&body);
      }
      client.Close();
    } else {
      status = client.Post(shape.path, shape.body, &body);
    }
    if (status < 0) {
      ++out->transport;
      client.Close();
      continue;
    }
    ++out->statuses[status];
    static const std::set<int> kAllowed = {200, 400, 404, 405,
                                           408, 413, 500, 503};
    if (kAllowed.count(status) == 0) {
      out->unexpected_statuses.push_back(status);
    }
    if (status == 503) {
      ++out->shed_503;
    } else if (status >= 500) {
      ++out->other_5xx;
    } else if (status >= 400) {
      ++out->other_4xx;
    } else {
      ++out->ok_2xx;
      if (body.find("\"checkpoint\"") != std::string::npos) {
        ++out->checkpoints;
      }
      if (body.find("\"definitive\": false") != std::string::npos) {
        ++out->nondefinitive;
      }
    }
  }
}

bool WriteDaemonReport(const std::string& path, const DaemonSoakConfig& cfg,
                       const ClientTally& tally, int64_t drain_ms,
                       bool drained, uint64_t server_requests,
                       uint64_t server_ok, uint64_t server_errors,
                       uint64_t server_shed, uint64_t server_checkpointed,
                       uint64_t injected,
                       const std::vector<Violation>& violations) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmark\": \"chaos_campaign\",\n");
  std::fprintf(f, "  \"mode\": \"daemon\",\n");
  std::fprintf(f, "  \"probability\": %g,\n  \"client_threads\": %d,\n",
               cfg.prob, cfg.client_threads);
  std::fprintf(f, "  \"requests_sent\": %llu,\n",
               static_cast<unsigned long long>(tally.sent));
  std::fprintf(
      f,
      "  \"client\": {\"ok\": %llu, \"shed\": %llu, \"http_4xx\": %llu, "
      "\"http_5xx\": %llu, \"transport\": %llu, \"checkpoints\": %llu, "
      "\"nondefinitive\": %llu},\n",
      static_cast<unsigned long long>(tally.ok_2xx),
      static_cast<unsigned long long>(tally.shed_503),
      static_cast<unsigned long long>(tally.other_4xx),
      static_cast<unsigned long long>(tally.other_5xx),
      static_cast<unsigned long long>(tally.transport),
      static_cast<unsigned long long>(tally.checkpoints),
      static_cast<unsigned long long>(tally.nondefinitive));
  std::fprintf(
      f,
      "  \"server\": {\"requests\": %llu, \"ok\": %llu, \"errors\": %llu, "
      "\"shed\": %llu, \"checkpointed\": %llu},\n",
      static_cast<unsigned long long>(server_requests),
      static_cast<unsigned long long>(server_ok),
      static_cast<unsigned long long>(server_errors),
      static_cast<unsigned long long>(server_shed),
      static_cast<unsigned long long>(server_checkpointed));
  std::fprintf(f, "  \"statuses\": {");
  bool first = true;
  for (const auto& [code, n] : tally.statuses) {
    std::fprintf(f, "%s\"%d\": %llu", first ? "" : ", ", code,
                 static_cast<unsigned long long>(n));
    first = false;
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"injected_failures\": %llu,\n",
               static_cast<unsigned long long>(injected));
  std::fprintf(f, "  \"sites\": {\n");
  first = true;
  for (const std::string& site : RegisteredFaultSites()) {
    std::fprintf(f, "%s    \"%s\": {\"probes\": %llu, \"injected\": %llu}",
                 first ? "" : ",\n", JsonEscape(site).c_str(),
                 static_cast<unsigned long long>(
                     FaultInjector::Global().probes(site)),
                 static_cast<unsigned long long>(
                     FaultInjector::Global().failures(site)));
    first = false;
  }
  std::fprintf(f, "\n  },\n");
  std::fprintf(f, "  \"drain_ms\": %lld,\n  \"drained\": %s,\n",
               static_cast<long long>(drain_ms), drained ? "true" : "false");
  std::fprintf(f, "  \"violations\": [");
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    std::fprintf(f,
                 "%s\n    {\"site\": \"%s\", \"probability\": %g, "
                 "\"budget\": \"%s\", \"run\": %d, \"what\": \"%s\"}",
                 i == 0 ? "" : ",", JsonEscape(v.site).c_str(), v.probability,
                 JsonEscape(v.budget).c_str(), v.run,
                 JsonEscape(v.what).c_str());
  }
  std::fprintf(f, "%s],\n", violations.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"invariants_held\": %s\n}\n",
               violations.empty() ? "true" : "false");
  std::fclose(f);
  return true;
}

int RunDaemonSoak(const DaemonSoakConfig& cfg) {
  obs::MetricsRegistry::Global().Enable();
  std::vector<Violation> violations;
  auto violate = [&](const std::string& what) {
    violations.push_back(Violation{"<daemon>", cfg.prob, "service", -1, what});
    std::fprintf(stderr, "VIOLATION [daemon soak]: %s\n", what.c_str());
  };

  // Workloads + the location example, registered before faults arm.
  std::vector<Workload> workloads;
  service::SchemaRegistry registry;
  for (int s = 0; s < cfg.seeds; ++s) {
    Result<Workload> w = MakeWorkload(s);
    if (!w.ok()) {
      std::fprintf(stderr, "workload %d generation failed: %s\n", s,
                   w.status().ToString().c_str());
      return 2;
    }
    workloads.push_back(std::move(w).ValueOrDie());
    Status registered = registry.Register(
        "w" + std::to_string(s), workloads.back().schema_text);
    if (!registered.ok()) {
      std::fprintf(stderr, "register w%d failed: %s\n", s,
                   registered.ToString().c_str());
      return 2;
    }
  }
  {
    Result<DimensionSchema> loc = LocationSchema();
    if (!loc.ok()) return 2;
    registry.RegisterParsed("loc", std::move(*loc));
  }

  // High-water below the server's concurrency so overload shedding
  // genuinely fires under the client fleet.
  exec::AdmissionGate gate(exec::AdmissionGate::Options{2, 25});
  service::DimService::Options service_options;
  service_options.registry = &registry;
  service_options.gate = &gate;
  service_options.default_deadline_ms = 250;
  service_options.max_deadline_ms = 2000;
  service_options.memory_budget_bytes = 16ull << 20;
  service_options.max_threads = 2;
  service_options.max_batch = 16;
  service::DimService service(service_options);

  constexpr size_t kMaxBodyBytes = 128 * 1024;
  obs::HttpServer server;
  obs::HttpServer::Options server_options;
  server_options.max_connections = 4;
  server_options.max_body_bytes = kMaxBodyBytes;
  server_options.read_timeout_ms = 2000;
  server_options.handler = [&](const obs::HttpRequest& request) {
    return service.HandleRequest(request);
  };
  if (!server.Start(server_options)) {
    std::fprintf(stderr, "daemon soak: server start failed: %s\n",
                 server.last_error().c_str());
    return 2;
  }

  // Arm EVERY registered site inside the serving threads.
  const std::vector<std::string> sites = RegisteredFaultSites();
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm(0x50a1c0de);
  const StatusCode rotation[] = {StatusCode::kInternal,
                                 StatusCode::kResourceExhausted,
                                 StatusCode::kDeadlineExceeded};
  for (size_t i = 0; i < sites.size(); ++i) {
    const StatusCode code =
        IsParseSite(sites[i]) ? StatusCode::kParseError : rotation[i % 3];
    injector.SetFault(sites[i], code, cfg.prob, "daemon-soak");
  }
  std::fprintf(stderr,
               "daemon soak: port %d, %zu sites armed at p=%g, %d client "
               "threads, >= %llu requests over >= %lld ms\n",
               server.port(), sites.size(), cfg.prob, cfg.client_threads,
               static_cast<unsigned long long>(cfg.min_requests),
               static_cast<long long>(cfg.duration_ms));

  const std::vector<SoakShape> shapes =
      BuildSoakShapes(workloads, kMaxBodyBytes);
  std::atomic<uint64_t> global_sent{0};
  std::atomic<bool> stop{false};
  std::vector<ClientTally> tallies(
      static_cast<size_t>(cfg.client_threads));
  std::vector<std::thread> clients;
  clients.reserve(tallies.size());
  // Workers run until the stop flag: the drain below fires while the
  // fleet is still hammering, so requests genuinely in flight at
  // BeginDrain() must complete, checkpoint, or shed — never vanish.
  for (size_t t = 0; t < tallies.size(); ++t) {
    clients.emplace_back(SoakWorker, server.port(), std::cref(shapes),
                         t * 3, INT64_MAX, cfg.min_requests, &global_sent,
                         &stop, &tallies[t]);
  }
  const auto load_start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - load_start <
             std::chrono::milliseconds(cfg.duration_ms) ||
         global_sent.load(std::memory_order_relaxed) < cfg.min_requests) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Graceful drain under live fire, with the same phased deadline
  // discipline as olapdcd's SIGTERM path: shed, wait, cancel, wait.
  constexpr int64_t kDrainDeadlineMs = 5000;
  const auto drain_start = std::chrono::steady_clock::now();
  server.BeginDrain();
  service.BeginDrain();
  bool drained = server.WaitDrained(kDrainDeadlineMs / 2);
  if (!drained) {
    service.CancelInFlight();
    drained = server.WaitDrained(kDrainDeadlineMs / 2);
  }
  const int64_t drain_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - drain_start)
          .count();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  server.Stop();

  ClientTally tally;
  for (const ClientTally& t : tallies) tally.Merge(t);

  // Invariant: the whole soak actually happened.
  if (tally.sent < cfg.min_requests) {
    violate("sent " + std::to_string(tally.sent) + " < minimum " +
            std::to_string(cfg.min_requests));
  }
  // Invariant: taxonomy-only response statuses.
  if (!tally.unexpected_statuses.empty()) {
    violate("response status outside the taxonomy: " +
            std::to_string(tally.unexpected_statuses.front()) + " (" +
            std::to_string(tally.unexpected_statuses.size()) +
            " occurrences)");
  }
  // Invariant: client-side conservation.
  const uint64_t accounted = tally.ok_2xx + tally.shed_503 +
                             tally.other_4xx + tally.other_5xx +
                             tally.transport;
  if (accounted != tally.sent) {
    violate("client conservation: sent " + std::to_string(tally.sent) +
            " != accounted " + std::to_string(accounted));
  }
  // The soak must exercise the real thing: some requests succeed,
  // overload shedding actually fires (the gate's high-water sits below
  // the client fleet's concurrency), and with every site armed, some
  // injections actually fire.
  if (tally.ok_2xx == 0) violate("no request ever succeeded");
  if (static_cast<int64_t>(cfg.client_threads) >
          gate.options().high_water &&
      tally.shed_503 == 0) {
    violate("admission gate never shed despite oversubscribed clients");
  }
  uint64_t injected = 0;
  for (const std::string& site : sites) injected += injector.failures(site);
  if (cfg.prob > 0 && injected == 0) {
    violate("every site armed but nothing ever injected");
  }
  // Invariant: server-side conservation at quiescence.
  const uint64_t server_total =
      service.ok() + service.errors() + service.shed();
  if (service.requests() != server_total) {
    violate("server conservation: requests " +
            std::to_string(service.requests()) + " != ok+errors+shed " +
            std::to_string(server_total));
  }
  // Invariant: drain completed inside the deadline, gate idle, memory
  // accounting back at zero.
  if (!drained) {
    violate("drain did not complete within " +
            std::to_string(kDrainDeadlineMs) + " ms");
  }
  if (gate.in_flight() != 0) {
    violate("admission gate left " + std::to_string(gate.in_flight()) +
            " in-flight after drain");
  }
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t reserved = snapshot.counter("olapdc.mem.reserved_bytes");
  const uint64_t released = snapshot.counter("olapdc.mem.released_bytes");
  if (reserved != released) {
    violate("reserved_bytes (" + std::to_string(reserved) +
            ") != released_bytes (" + std::to_string(released) +
            ") at quiescence");
  }

  const bool wrote = WriteDaemonReport(
      cfg.out_path, cfg, tally, drain_ms, drained, service.requests(),
      service.ok(), service.errors(), service.shed(), service.checkpointed(),
      injected, violations);
  injector.Disarm();
  if (!wrote) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 cfg.out_path.c_str());
    return 2;
  }
  std::fprintf(
      stderr,
      "daemon soak done: %llu sent (%llu ok, %llu shed, %llu 4xx, %llu "
      "5xx, %llu transport), %llu checkpoints, %llu injected, drain %lld "
      "ms, %zu violations -> %s\n",
      static_cast<unsigned long long>(tally.sent),
      static_cast<unsigned long long>(tally.ok_2xx),
      static_cast<unsigned long long>(tally.shed_503),
      static_cast<unsigned long long>(tally.other_4xx),
      static_cast<unsigned long long>(tally.other_5xx),
      static_cast<unsigned long long>(tally.transport),
      static_cast<unsigned long long>(tally.checkpoints),
      static_cast<unsigned long long>(injected),
      static_cast<long long>(drain_ms), violations.size(),
      cfg.out_path.c_str());
  return violations.empty() ? 0 : 1;
}

int Main(int argc, char** argv) {
  int runs_per_cell = 11;
  int seeds = 6;
  bool quick = false;
  bool daemon = false;
  DaemonSoakConfig daemon_cfg;
  bool out_path_set = false;
  std::string out_path = "BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--runs-per-cell") {
      runs_per_cell = std::atoi(value());
    } else if (arg == "--seeds") {
      seeds = std::atoi(value());
    } else if (arg == "--out") {
      out_path = value();
      out_path_set = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--daemon") {
      daemon = true;
    } else if (arg == "--daemon-duration-ms") {
      daemon_cfg.duration_ms = std::atoll(value());
    } else if (arg == "--daemon-min-requests") {
      daemon_cfg.min_requests = static_cast<uint64_t>(std::atoll(value()));
    } else if (arg == "--daemon-prob") {
      daemon_cfg.prob = std::atof(value());
    } else if (arg == "--daemon-threads") {
      daemon_cfg.client_threads = std::atoi(value());
    } else {
      std::fprintf(stderr,
                   "usage: chaos_campaign [--runs-per-cell n] [--seeds n] "
                   "[--out path] [--quick] [--daemon "
                   "[--daemon-duration-ms n] [--daemon-min-requests n] "
                   "[--daemon-prob p] [--daemon-threads n]]\n");
      return 2;
    }
  }
  if (daemon) {
    if (daemon_cfg.duration_ms < 1 || daemon_cfg.client_threads < 1 ||
        daemon_cfg.prob < 0 || daemon_cfg.prob > 1) {
      std::fprintf(stderr, "error: bad --daemon-* flag values\n");
      return 2;
    }
    daemon_cfg.seeds = seeds == 6 ? 3 : seeds;
    if (out_path_set) daemon_cfg.out_path = out_path;
    return RunDaemonSoak(daemon_cfg);
  }
  if (quick) {
    runs_per_cell = 5;  // one run of every request shape
    seeds = 2;
  }
  if (runs_per_cell < 1 || seeds < 1) {
    std::fprintf(stderr, "error: --runs-per-cell and --seeds must be >= 1\n");
    return 2;
  }

  obs::MetricsRegistry::Global().Enable();

  // Ground truth first, with the injector disarmed.
  std::vector<Workload> workloads;
  for (int s = 0; s < seeds; ++s) {
    Result<Workload> w = MakeWorkload(s);
    if (!w.ok()) {
      std::fprintf(stderr, "workload %d generation failed: %s\n", s,
                   w.status().ToString().c_str());
      return 2;
    }
    workloads.push_back(std::move(w).ValueOrDie());
  }

  const std::vector<std::string> sites = RegisteredFaultSites();
  std::vector<double> probabilities(std::begin(kProbabilities),
                                    std::end(kProbabilities));
  std::vector<BudgetConfig> budgets(std::begin(kBudgetConfigs),
                                    std::end(kBudgetConfigs));
  if (quick) {
    probabilities = {0.5};
    budgets = {kBudgetConfigs[0], kBudgetConfigs[2]};
  }

  std::fprintf(stderr,
               "chaos campaign: %zu sites x %zu probabilities x %zu budgets "
               "x %d runs\n",
               sites.size(), probabilities.size(), budgets.size(),
               runs_per_cell);

  exec::WorkStealingPool pool(2);
  Campaign campaign;
  const StatusCode rotation[] = {StatusCode::kInternal,
                                 StatusCode::kResourceExhausted,
                                 StatusCode::kDeadlineExceeded};

  for (const std::string& site : sites) {
    for (double prob : probabilities) {
      for (const BudgetConfig& bc : budgets) {
        ++campaign.total_cells;
        FaultInjector& injector = FaultInjector::Global();
        const uint64_t cell_seed = campaign.total_cells * 2654435761ull;
        injector.Arm(cell_seed);

        uint64_t cell_probes = 0;
        uint64_t cell_failures = 0;
        for (int run = 0; run < runs_per_cell; ++run) {
          const Workload& w = workloads[run % workloads.size()];
          const StatusCode injected =
              IsParseSite(site) ? StatusCode::kParseError
                                : rotation[run % 3];
          // SetFault resets the site's counters, so per-run deltas are
          // accumulated before the next run reconfigures it.
          injector.SetFault(site, injected, prob, "chaos");

          // Per-run budget; memory budgets are sticky-once-exhausted,
          // so each run gets a fresh one.
          std::optional<MemoryBudget> mem;
          Budget budget = Budget::Unbounded();
          if (bc.deadline_ms >= 0) {
            budget.SetDeadline(Budget::Clock::now() +
                               std::chrono::milliseconds(bc.deadline_ms));
          }
          if (bc.memory_bytes > 0) {
            mem.emplace(bc.memory_bytes);
            budget.SetMemory(&*mem);
          }
          DimsatOptions options;
          options.enumerate_all = true;
          options.max_frozen = 64;
          options.budget_check_stride = 16;
          if (!budget.unbounded()) options.budget = &budget;
          if (bc.max_expand_calls > 0) {
            options.max_expand_calls = bc.max_expand_calls;
          }

          exec::AdmissionGate gate;
          RunOutcome outcome;
          switch (run % 5) {
            case 0:
              outcome = RunSequentialWithResume(w, options);
              break;
            case 1:
              outcome = RunParallelAdmitted(w, options, &pool, &gate);
              break;
            case 2:
              outcome = RunReasonerLadder(w, options, options.budget);
              break;
            case 3:
              outcome = RunNestedParallel(w, options, &pool);
              break;
            default:
              outcome = RunParseBoundary(w, options.budget);
              break;
          }
          ++campaign.total_runs;
          ++campaign.runs_per_site[site];

          auto violate = [&](const std::string& what) {
            campaign.violations.push_back(
                Violation{site, prob, bc.name, run, what});
            std::fprintf(stderr, "VIOLATION [%s p=%g %s run %d]: %s\n",
                         site.c_str(), prob, bc.name, run, what.c_str());
          };

          // Invariant 2: taxonomy-only failure codes.
          const StatusCode code = outcome.status.code();
          const bool taxonomy_ok =
              code == StatusCode::kOk || code == injected ||
              code == StatusCode::kResourceExhausted ||
              code == StatusCode::kDeadlineExceeded ||
              code == StatusCode::kCancelled ||
              code == StatusCode::kUnavailable;
          if (!taxonomy_ok) {
            violate("unclassified status: " + outcome.status.ToString());
          }
          if (!outcome.status.ok()) ++campaign.degraded;

          // Invariants 3+4: witnesses are genuine and confirmed by the
          // unfaulted baseline.
          if (outcome.reported_satisfiable) {
            ++campaign.reported_sat;
            if (!w.satisfiable) {
              violate("faulted run reported SATISFIABLE on an " +
                      std::string("unsatisfiable workload"));
            }
          }
          for (const FrozenDimension& f : outcome.frozen) {
            Status valid = f.ToInstance(w.ds).status();
            if (!valid.ok()) {
              violate("invalid witness: " + valid.ToString());
              break;
            }
          }

          // Invariant 5: the request released everything it held.
          if (gate.in_flight() != 0) {
            violate("admission gate left in-flight work behind");
          }
          if (mem.has_value() && mem->reserved() != 0) {
            violate("memory accounting leaked " +
                    std::to_string(mem->reserved()) + " bytes");
          }
          cell_probes += injector.probes(site);
          cell_failures += injector.failures(site);
        }

        campaign.injected_failures += cell_failures;
        campaign.failures_per_site[site] += cell_failures;
        // High-probability cells over real probe traffic must actually
        // inject — a silent dead site means the sweep isn't sweeping.
        if (prob >= 0.5 && cell_probes >= 8 && cell_failures == 0) {
          campaign.violations.push_back(Violation{
              site, prob, bc.name, -1,
              "site probed " + std::to_string(cell_probes) +
                  " times but injected nothing"});
        }
        injector.Disarm();
      }
    }
  }

  // Invariant 6: campaign-wide metrics consistency at quiescence.
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t reserved = snapshot.counter("olapdc.mem.reserved_bytes");
  const uint64_t released = snapshot.counter("olapdc.mem.released_bytes");
  if (reserved != released) {
    campaign.violations.push_back(
        Violation{"<metrics>", 0, "<all>", -1,
                  "reserved_bytes (" + std::to_string(reserved) +
                      ") != released_bytes (" + std::to_string(released) +
                      ") at quiescence"});
  }

  if (!WriteReport(out_path, campaign, quick, runs_per_cell, seeds)) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 out_path.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "chaos campaign done: %llu runs, %llu injected failures, "
               "%zu violations -> %s\n",
               static_cast<unsigned long long>(campaign.total_runs),
               static_cast<unsigned long long>(campaign.injected_failures),
               campaign.violations.size(), out_path.c_str());
  return campaign.violations.empty() ? 0 : 1;
}

}  // namespace
}  // namespace olapdc

int main(int argc, char** argv) { return olapdc::Main(argc, argv); }
