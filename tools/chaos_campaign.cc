// chaos_campaign — the robustness sweep harness (docs/robustness.md).
//
// Sweeps every registered fault-injection site × a probability grid ×
// the budget configurations over generated workloads, driving the
// request shapes a deployment actually runs (sequential DIMSAT with
// checkpoint/resume, admission-gated parallel DIMSAT, the Reasoner
// ladder, the parse boundary) and asserting the crash-proof-lifecycle
// invariants on every run:
//
//   1. no crash / no hang (the harness itself finishing is the check;
//      ASan/UBSan builds add memory-safety teeth);
//   2. taxonomy-only failures: a run's status is OK, the injected
//      code, or a budget/overload code — never an unclassified error;
//   3. no wrong witness: a SATISFIABLE verdict always carries a frozen
//      dimension that passes full C1-C7 + Sigma validation
//      (FrozenDimension::ToInstance), faults or not;
//   4. no phantom result: a faulted run that reports SATISFIABLE is
//      confirmed by the unfaulted baseline;
//   5. the pool drains: every run returns with no in-flight admission
//      and the per-request memory accounting back at zero;
//   6. metrics stay consistent: at campaign quiescence, reserved ==
//      released bytes, and armed cells actually injected.
//
// Exit code 0 = every invariant held on every run; 1 = violations
// (detailed in the JSON report and on stderr).
//
// Flags:
//   --runs-per-cell <n>   workload runs per (site, prob, budget) cell
//   --seeds <n>           distinct workload seeds (cycled over runs)
//   --out <path>          JSON report path (default BENCH_robustness.json)
//   --quick               CI smoke grid: prob 0.5 only, two budget
//                         configs, two runs per cell

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/fault_injector.h"
#include "common/memory_budget.h"
#include "core/dimsat.h"
#include "core/reasoner.h"
#include "exec/admission.h"
#include "exec/work_stealing_pool.h"
#include "io/instance_io.h"
#include "io/schema_io.h"
#include "obs/metrics.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

struct Workload {
  DimensionSchema ds;
  CategoryId root = 0;
  bool satisfiable = false;
  std::string schema_text;
  /// Serialized witness instance (only when satisfiable).
  std::string instance_text;
};

/// Generates workload `seed` and computes its unfaulted ground truth.
/// Must be called with the injector disarmed.
Result<Workload> MakeWorkload(int seed) {
  // Large enough that parallel runs actually keep the pool busy (the
  // exec.steal / exec.group_wait sites only probe when workers contend
  // for work), small enough that the full grid stays in seconds.
  SchemaGenOptions schema_options;
  schema_options.num_levels = 4;
  schema_options.categories_per_level = 3;
  schema_options.extra_edge_prob = 0.35;
  schema_options.seed = static_cast<uint64_t>(seed) * 7919 + 5;
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr hierarchy,
                          GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = static_cast<uint64_t>(seed);
  OLAPDC_ASSIGN_OR_RETURN(
      DimensionSchema ds,
      GenerateConstrainedSchema(hierarchy, constraint_options));

  Workload w{std::move(ds), /*root=*/0, /*satisfiable=*/false, {}, {}};
  OLAPDC_ASSIGN_OR_RETURN(w.root, w.ds.hierarchy().CategoryIdOf("Base"));
  DimsatResult truth = Dimsat(w.ds, w.root, {});
  OLAPDC_RETURN_NOT_OK(truth.status);
  w.satisfiable = truth.satisfiable;
  w.schema_text = SerializeSchema(w.ds);
  if (truth.satisfiable) {
    OLAPDC_ASSIGN_OR_RETURN(DimensionInstance instance,
                            truth.frozen.front().ToInstance(w.ds));
    w.instance_text = SerializeInstance(instance);
  }
  return w;
}

/// One budget configuration of the sweep.
struct BudgetConfig {
  const char* name;
  int64_t deadline_ms = -1;        // <0: none
  uint64_t max_expand_calls = 0;   // 0: unlimited
  uint64_t memory_bytes = 0;       // 0: none
};

constexpr BudgetConfig kBudgetConfigs[] = {
    {"unbounded"},
    {"deadline-5ms", 5},
    {"expand-cap-64", -1, 64},
    {"memory-32k", -1, 0, 32 * 1024},
};

constexpr double kProbabilities[] = {0.01, 0.1, 0.5};

bool IsParseSite(const std::string& site) {
  return site == "schema_io.parse" || site == "instance_io.parse";
}

/// Outcome of one request run under injection.
struct RunOutcome {
  Status status;
  bool reported_satisfiable = false;
  /// Every frozen dimension the run reported (validated by the caller).
  std::vector<FrozenDimension> frozen;
};

/// The request shapes, rotated per run. Each receives a fully
/// configured budget (deadline / expand cap / memory) and must return
/// whatever status the public API surfaced.
RunOutcome RunSequentialWithResume(const Workload& w,
                                   DimsatOptions options) {
  RunOutcome out;
  DimsatCheckpoint cp;
  options.num_threads = 1;
  options.checkpoint = &cp;
  DimsatResult r = Dimsat(w.ds, w.root, options);
  out.status = r.status;
  out.reported_satisfiable = r.satisfiable;
  for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
  // Bounded resume chain: under injected faults progress is
  // probabilistic, so the chain is capped — robustness invariants are
  // the claim here, exact resume equivalence is checkpoint_test's.
  for (int link = 0; link < 8 && !cp.empty(); ++link) {
    DimsatCheckpoint from = std::move(cp);
    cp.frames.clear();
    DimsatResult next = ResumeDimsat(w.ds, w.root, options, std::move(from));
    out.status = next.status;
    out.reported_satisfiable |= next.satisfiable;
    for (FrozenDimension& f : next.frozen) out.frozen.push_back(std::move(f));
  }
  return out;
}

RunOutcome RunParallelAdmitted(const Workload& w, DimsatOptions options,
                               exec::WorkStealingPool* pool,
                               exec::AdmissionGate* gate) {
  RunOutcome out;
  options.num_threads = pool->num_threads();
  options.pool = pool;
  options.admission = gate;
  DimsatResult r = DimsatParallel(w.ds, w.root, options, pool->num_threads());
  out.status = r.status;
  out.reported_satisfiable = r.satisfiable;
  for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
  return out;
}

RunOutcome RunReasonerLadder(const Workload& w, const DimsatOptions& base,
                             const Budget* budget) {
  RunOutcome out;
  ReasonerOptions options;
  options.dimsat = base;
  options.dimsat.num_threads = 1;
  options.initial_expand_budget = 16;
  options.max_attempts = 6;
  options.retry.max_retries = 2;
  options.retry.initial_backoff_ms = 0.1;
  Reasoner reasoner(w.ds, options);
  ReasonerAnswer answer = reasoner.QuerySatisfiable(w.root, budget);
  out.status = answer.reason;
  out.reported_satisfiable = answer.truth == Truth::kYes;
  return out;
}

/// Nested parallel request: a pool task that itself runs DimsatParallel
/// on the same pool (the shape of a parallel summarizability sweep,
/// where per-bottom tasks fan out further). The inner search's
/// TaskGroup::Wait then runs on a pool *worker*, driving the
/// worker-thread helping path — the exec.group_wait site.
RunOutcome RunNestedParallel(const Workload& w, DimsatOptions options,
                             exec::WorkStealingPool* pool) {
  RunOutcome out;
  options.num_threads = pool->num_threads();
  options.pool = pool;
  {
    exec::TaskGroup group(pool);
    group.Spawn([&] {
      DimsatResult r =
          DimsatParallel(w.ds, w.root, options, options.num_threads);
      out.status = std::move(r.status);
      out.reported_satisfiable = r.satisfiable;
      for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
    });
    group.Wait();
  }
  return out;
}

RunOutcome RunParseBoundary(const Workload& w, const Budget* budget) {
  RunOutcome out;
  Result<DimensionSchema> schema = ParseSchemaText(w.schema_text, budget);
  if (!schema.ok()) {
    out.status = schema.status();
    return out;
  }
  if (!w.instance_text.empty()) {
    Result<DimensionInstance> instance = ParseInstanceText(
        schema->hierarchy_ptr(), w.instance_text, false, budget);
    if (!instance.ok()) out.status = instance.status();
  }
  return out;
}

struct Violation {
  std::string site;
  double probability;
  std::string budget;
  int run;
  std::string what;
};

struct Campaign {
  uint64_t total_runs = 0;
  uint64_t total_cells = 0;
  uint64_t injected_failures = 0;
  uint64_t reported_sat = 0;
  uint64_t degraded = 0;  // non-OK statuses (taxonomy-conforming)
  std::vector<Violation> violations;
  std::map<std::string, uint64_t> runs_per_site;
  std::map<std::string, uint64_t> failures_per_site;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool WriteReport(const std::string& path, const Campaign& c, bool quick,
                 int runs_per_cell, int seeds) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmark\": \"chaos_campaign\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"runs_per_cell\": %d,\n  \"workload_seeds\": %d,\n",
               runs_per_cell, seeds);
  std::fprintf(f, "  \"cells\": %llu,\n  \"total_runs\": %llu,\n",
               static_cast<unsigned long long>(c.total_cells),
               static_cast<unsigned long long>(c.total_runs));
  std::fprintf(f, "  \"injected_failures\": %llu,\n",
               static_cast<unsigned long long>(c.injected_failures));
  std::fprintf(f, "  \"reported_satisfiable\": %llu,\n",
               static_cast<unsigned long long>(c.reported_sat));
  std::fprintf(f, "  \"degraded_runs\": %llu,\n",
               static_cast<unsigned long long>(c.degraded));
  std::fprintf(f, "  \"sites\": {\n");
  bool first = true;
  for (const auto& [site, runs] : c.runs_per_site) {
    std::fprintf(f, "%s    \"%s\": {\"runs\": %llu, \"injected\": %llu}",
                 first ? "" : ",\n", JsonEscape(site).c_str(),
                 static_cast<unsigned long long>(runs),
                 static_cast<unsigned long long>(
                     c.failures_per_site.count(site)
                         ? c.failures_per_site.at(site)
                         : 0));
    first = false;
  }
  std::fprintf(f, "\n  },\n");
  std::fprintf(f, "  \"violations\": [");
  for (size_t i = 0; i < c.violations.size(); ++i) {
    const Violation& v = c.violations[i];
    std::fprintf(f,
                 "%s\n    {\"site\": \"%s\", \"probability\": %g, "
                 "\"budget\": \"%s\", \"run\": %d, \"what\": \"%s\"}",
                 i == 0 ? "" : ",", JsonEscape(v.site).c_str(), v.probability,
                 JsonEscape(v.budget).c_str(), v.run,
                 JsonEscape(v.what).c_str());
  }
  std::fprintf(f, "%s],\n", c.violations.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"invariants_held\": %s\n}\n",
               c.violations.empty() ? "true" : "false");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  int runs_per_cell = 11;
  int seeds = 6;
  bool quick = false;
  std::string out_path = "BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--runs-per-cell") {
      runs_per_cell = std::atoi(value());
    } else if (arg == "--seeds") {
      seeds = std::atoi(value());
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: chaos_campaign [--runs-per-cell n] [--seeds n] "
                   "[--out path] [--quick]\n");
      return 2;
    }
  }
  if (quick) {
    runs_per_cell = 5;  // one run of every request shape
    seeds = 2;
  }
  if (runs_per_cell < 1 || seeds < 1) {
    std::fprintf(stderr, "error: --runs-per-cell and --seeds must be >= 1\n");
    return 2;
  }

  obs::MetricsRegistry::Global().Enable();

  // Ground truth first, with the injector disarmed.
  std::vector<Workload> workloads;
  for (int s = 0; s < seeds; ++s) {
    Result<Workload> w = MakeWorkload(s);
    if (!w.ok()) {
      std::fprintf(stderr, "workload %d generation failed: %s\n", s,
                   w.status().ToString().c_str());
      return 2;
    }
    workloads.push_back(std::move(w).ValueOrDie());
  }

  const std::vector<std::string> sites = RegisteredFaultSites();
  std::vector<double> probabilities(std::begin(kProbabilities),
                                    std::end(kProbabilities));
  std::vector<BudgetConfig> budgets(std::begin(kBudgetConfigs),
                                    std::end(kBudgetConfigs));
  if (quick) {
    probabilities = {0.5};
    budgets = {kBudgetConfigs[0], kBudgetConfigs[2]};
  }

  std::fprintf(stderr,
               "chaos campaign: %zu sites x %zu probabilities x %zu budgets "
               "x %d runs\n",
               sites.size(), probabilities.size(), budgets.size(),
               runs_per_cell);

  exec::WorkStealingPool pool(2);
  Campaign campaign;
  const StatusCode rotation[] = {StatusCode::kInternal,
                                 StatusCode::kResourceExhausted,
                                 StatusCode::kDeadlineExceeded};

  for (const std::string& site : sites) {
    for (double prob : probabilities) {
      for (const BudgetConfig& bc : budgets) {
        ++campaign.total_cells;
        FaultInjector& injector = FaultInjector::Global();
        const uint64_t cell_seed = campaign.total_cells * 2654435761ull;
        injector.Arm(cell_seed);

        uint64_t cell_probes = 0;
        uint64_t cell_failures = 0;
        for (int run = 0; run < runs_per_cell; ++run) {
          const Workload& w = workloads[run % workloads.size()];
          const StatusCode injected =
              IsParseSite(site) ? StatusCode::kParseError
                                : rotation[run % 3];
          // SetFault resets the site's counters, so per-run deltas are
          // accumulated before the next run reconfigures it.
          injector.SetFault(site, injected, prob, "chaos");

          // Per-run budget; memory budgets are sticky-once-exhausted,
          // so each run gets a fresh one.
          std::optional<MemoryBudget> mem;
          Budget budget = Budget::Unbounded();
          if (bc.deadline_ms >= 0) {
            budget.SetDeadline(Budget::Clock::now() +
                               std::chrono::milliseconds(bc.deadline_ms));
          }
          if (bc.memory_bytes > 0) {
            mem.emplace(bc.memory_bytes);
            budget.SetMemory(&*mem);
          }
          DimsatOptions options;
          options.enumerate_all = true;
          options.max_frozen = 64;
          options.budget_check_stride = 16;
          if (!budget.unbounded()) options.budget = &budget;
          if (bc.max_expand_calls > 0) {
            options.max_expand_calls = bc.max_expand_calls;
          }

          exec::AdmissionGate gate;
          RunOutcome outcome;
          switch (run % 5) {
            case 0:
              outcome = RunSequentialWithResume(w, options);
              break;
            case 1:
              outcome = RunParallelAdmitted(w, options, &pool, &gate);
              break;
            case 2:
              outcome = RunReasonerLadder(w, options, options.budget);
              break;
            case 3:
              outcome = RunNestedParallel(w, options, &pool);
              break;
            default:
              outcome = RunParseBoundary(w, options.budget);
              break;
          }
          ++campaign.total_runs;
          ++campaign.runs_per_site[site];

          auto violate = [&](const std::string& what) {
            campaign.violations.push_back(
                Violation{site, prob, bc.name, run, what});
            std::fprintf(stderr, "VIOLATION [%s p=%g %s run %d]: %s\n",
                         site.c_str(), prob, bc.name, run, what.c_str());
          };

          // Invariant 2: taxonomy-only failure codes.
          const StatusCode code = outcome.status.code();
          const bool taxonomy_ok =
              code == StatusCode::kOk || code == injected ||
              code == StatusCode::kResourceExhausted ||
              code == StatusCode::kDeadlineExceeded ||
              code == StatusCode::kCancelled ||
              code == StatusCode::kUnavailable;
          if (!taxonomy_ok) {
            violate("unclassified status: " + outcome.status.ToString());
          }
          if (!outcome.status.ok()) ++campaign.degraded;

          // Invariants 3+4: witnesses are genuine and confirmed by the
          // unfaulted baseline.
          if (outcome.reported_satisfiable) {
            ++campaign.reported_sat;
            if (!w.satisfiable) {
              violate("faulted run reported SATISFIABLE on an " +
                      std::string("unsatisfiable workload"));
            }
          }
          for (const FrozenDimension& f : outcome.frozen) {
            Status valid = f.ToInstance(w.ds).status();
            if (!valid.ok()) {
              violate("invalid witness: " + valid.ToString());
              break;
            }
          }

          // Invariant 5: the request released everything it held.
          if (gate.in_flight() != 0) {
            violate("admission gate left in-flight work behind");
          }
          if (mem.has_value() && mem->reserved() != 0) {
            violate("memory accounting leaked " +
                    std::to_string(mem->reserved()) + " bytes");
          }
          cell_probes += injector.probes(site);
          cell_failures += injector.failures(site);
        }

        campaign.injected_failures += cell_failures;
        campaign.failures_per_site[site] += cell_failures;
        // High-probability cells over real probe traffic must actually
        // inject — a silent dead site means the sweep isn't sweeping.
        if (prob >= 0.5 && cell_probes >= 8 && cell_failures == 0) {
          campaign.violations.push_back(Violation{
              site, prob, bc.name, -1,
              "site probed " + std::to_string(cell_probes) +
                  " times but injected nothing"});
        }
        injector.Disarm();
      }
    }
  }

  // Invariant 6: campaign-wide metrics consistency at quiescence.
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t reserved = snapshot.counter("olapdc.mem.reserved_bytes");
  const uint64_t released = snapshot.counter("olapdc.mem.released_bytes");
  if (reserved != released) {
    campaign.violations.push_back(
        Violation{"<metrics>", 0, "<all>", -1,
                  "reserved_bytes (" + std::to_string(reserved) +
                      ") != released_bytes (" + std::to_string(released) +
                      ") at quiescence"});
  }

  if (!WriteReport(out_path, campaign, quick, runs_per_cell, seeds)) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 out_path.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "chaos campaign done: %llu runs, %llu injected failures, "
               "%zu violations -> %s\n",
               static_cast<unsigned long long>(campaign.total_runs),
               static_cast<unsigned long long>(campaign.injected_failures),
               campaign.violations.size(), out_path.c_str());
  return campaign.violations.empty() ? 0 : 1;
}

}  // namespace
}  // namespace olapdc

int main(int argc, char** argv) { return olapdc::Main(argc, argv); }
