// chaos_campaign — the robustness sweep harness (docs/robustness.md).
//
// Sweeps every registered fault-injection site × a probability grid ×
// the budget configurations over generated workloads, driving the
// request shapes a deployment actually runs (sequential DIMSAT with
// checkpoint/resume, admission-gated parallel DIMSAT, the Reasoner
// ladder, the parse boundary) and asserting the crash-proof-lifecycle
// invariants on every run:
//
//   1. no crash / no hang (the harness itself finishing is the check;
//      ASan/UBSan builds add memory-safety teeth);
//   2. taxonomy-only failures: a run's status is OK, the injected
//      code, or a budget/overload code — never an unclassified error;
//   3. no wrong witness: a SATISFIABLE verdict always carries a frozen
//      dimension that passes full C1-C7 + Sigma validation
//      (FrozenDimension::ToInstance), faults or not;
//   4. no phantom result: a faulted run that reports SATISFIABLE is
//      confirmed by the unfaulted baseline;
//   5. the pool drains: every run returns with no in-flight admission
//      and the per-request memory accounting back at zero;
//   6. metrics stay consistent: at campaign quiescence, reserved ==
//      released bytes, and armed cells actually injected.
//
// Exit code 0 = every invariant held on every run; 1 = violations
// (detailed in the JSON report and on stderr).
//
// Flags:
//   --runs-per-cell <n>   workload runs per (site, prob, budget) cell
//   --seeds <n>           distinct workload seeds (cycled over runs)
//   --out <path>          JSON report path (default BENCH_robustness.json;
//                         daemon mode: chaos_daemon_report.json)
//   --quick               CI smoke grid: prob 0.5 only, two budget
//                         configs, two runs per cell
//
// Live-daemon soak (--daemon): instead of the in-process sweep, stand
// up the full olapdcd stack (SchemaRegistry + AdmissionGate +
// DimService behind the hardened HttpServer on a real loopback port),
// arm EVERY registered fault site inside the serving threads, and
// hammer it with concurrent clients running the mixed request shapes
// (check / implies / summarizable / batch, tiny deadlines that force
// the checkpoint path, schema re-registration mid-flight, malformed
// JSON, unknown schemas, oversized bodies, truncated POSTs, garbage
// request lines) — then drain gracefully and assert the lifecycle
// invariants from the outside:
//   - every response is in the documented status taxonomy
//     (200/400/404/405/408/413/500/503), never a crash or a hang;
//   - client-side conservation: every request sent is accounted as
//     exactly one of {2xx, shed, other 4xx/5xx, transport error};
//   - server-side conservation: requests == ok + errors + shed at
//     quiescence;
//   - drain completes within the deadline with the admission gate idle
//     and memory accounting back at zero.
//
//   --daemon-duration-ms <n>   load phase length (default 4000)
//   --daemon-min-requests <n>  keep hammering until this many sent
//                              (default 1200)
//   --daemon-prob <p>          per-site injection probability (0.05)
//   --daemon-threads <n>       client threads (default 4)
//
// Kill-9 crash grid (--crash / --crash-only): forks a real olapdcd
// (with --snapshot-file and a fast --snapshot-interval-ms), hammers it
// with mixed load, and SIGKILLs it at randomized points — including
// mid-snapshot, with some rounds arming the durable.* fault sites and
// some rounds corrupting the snapshot on disk (byte flips, torn
// truncation) before restart. After every kill the daemon is
// restarted and the crash-durability invariants are asserted:
//
//   A. startup never fails on a missing/torn/corrupt snapshot — the
//      daemon always reaches "listening" (worst case it starts cold);
//   B. recovered warm answers equal the cold recomputation: the probe
//      set (check / implies / summarizable) must return exactly the
//      ground truth computed in-process before any kill;
//   C. the learned no-good count is monotone across *clean* restarts:
//      what a graceful shutdown reports saved, the next startup must
//      recover (kill -9 may lose un-snapshotted tail learning; a clean
//      drain may not).
//
// --crash runs the grid after the classic in-process sweep and embeds
// a "crash_grid" section in the combined report (the committed
// BENCH_robustness.json shape); --crash-only runs just the grid (the
// CI crash-recovery smoke).
//
//   --crash-kills <n>          rounds in the grid (default 200; 10 in
//                              --quick)
//   --crash-daemon-bin <path>  olapdcd binary (default: next to this
//                              binary)
//   --crash-dir <path>         scratch dir (default chaos_crash_tmp)

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/fault_injector.h"
#include "common/memory_budget.h"
#include "core/dimsat.h"
#include "core/location_example.h"
#include "core/reasoner.h"
#include "exec/admission.h"
#include "exec/work_stealing_pool.h"
#include "io/instance_io.h"
#include "io/schema_io.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "service/dim_service.h"
#include "service/schema_registry.h"
#include "tools/http_client.h"
#include "workload/schema_generator.h"

namespace olapdc {
namespace {

struct Workload {
  DimensionSchema ds;
  CategoryId root = 0;
  bool satisfiable = false;
  std::string schema_text;
  /// Serialized witness instance (only when satisfiable).
  std::string instance_text;
};

/// Generates workload `seed` and computes its unfaulted ground truth.
/// Must be called with the injector disarmed.
Result<Workload> MakeWorkload(int seed) {
  // Large enough that parallel runs actually keep the pool busy (the
  // exec.steal / exec.group_wait sites only probe when workers contend
  // for work), small enough that the full grid stays in seconds.
  SchemaGenOptions schema_options;
  schema_options.num_levels = 4;
  schema_options.categories_per_level = 3;
  schema_options.extra_edge_prob = 0.35;
  schema_options.seed = static_cast<uint64_t>(seed) * 7919 + 5;
  OLAPDC_ASSIGN_OR_RETURN(HierarchySchemaPtr hierarchy,
                          GenerateLayeredHierarchy(schema_options));
  ConstraintGenOptions constraint_options;
  constraint_options.into_fraction = 0.4;
  constraint_options.num_choice_constraints = 1;
  constraint_options.num_equality_constraints = 1;
  constraint_options.seed = static_cast<uint64_t>(seed);
  OLAPDC_ASSIGN_OR_RETURN(
      DimensionSchema ds,
      GenerateConstrainedSchema(hierarchy, constraint_options));

  Workload w{std::move(ds), /*root=*/0, /*satisfiable=*/false, {}, {}};
  OLAPDC_ASSIGN_OR_RETURN(w.root, w.ds.hierarchy().CategoryIdOf("Base"));
  DimsatResult truth = Dimsat(w.ds, w.root, {});
  OLAPDC_RETURN_NOT_OK(truth.status);
  w.satisfiable = truth.satisfiable;
  w.schema_text = SerializeSchema(w.ds);
  if (truth.satisfiable) {
    OLAPDC_ASSIGN_OR_RETURN(DimensionInstance instance,
                            truth.frozen.front().ToInstance(w.ds));
    w.instance_text = SerializeInstance(instance);
  }
  return w;
}

/// One budget configuration of the sweep.
struct BudgetConfig {
  const char* name;
  int64_t deadline_ms = -1;        // <0: none
  uint64_t max_expand_calls = 0;   // 0: unlimited
  uint64_t memory_bytes = 0;       // 0: none
};

constexpr BudgetConfig kBudgetConfigs[] = {
    {"unbounded"},
    {"deadline-5ms", 5},
    {"expand-cap-64", -1, 64},
    {"memory-32k", -1, 0, 32 * 1024},
};

constexpr double kProbabilities[] = {0.01, 0.1, 0.5};

bool IsParseSite(const std::string& site) {
  return site == "schema_io.parse" || site == "instance_io.parse";
}

/// Outcome of one request run under injection.
struct RunOutcome {
  Status status;
  bool reported_satisfiable = false;
  /// Every frozen dimension the run reported (validated by the caller).
  std::vector<FrozenDimension> frozen;
};

/// The request shapes, rotated per run. Each receives a fully
/// configured budget (deadline / expand cap / memory) and must return
/// whatever status the public API surfaced.
RunOutcome RunSequentialWithResume(const Workload& w,
                                   DimsatOptions options) {
  RunOutcome out;
  DimsatCheckpoint cp;
  options.num_threads = 1;
  options.checkpoint = &cp;
  DimsatResult r = Dimsat(w.ds, w.root, options);
  out.status = r.status;
  out.reported_satisfiable = r.satisfiable;
  for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
  // Bounded resume chain: under injected faults progress is
  // probabilistic, so the chain is capped — robustness invariants are
  // the claim here, exact resume equivalence is checkpoint_test's.
  for (int link = 0; link < 8 && !cp.empty(); ++link) {
    DimsatCheckpoint from = std::move(cp);
    cp.frames.clear();
    DimsatResult next = ResumeDimsat(w.ds, w.root, options, std::move(from));
    out.status = next.status;
    out.reported_satisfiable |= next.satisfiable;
    for (FrozenDimension& f : next.frozen) out.frozen.push_back(std::move(f));
  }
  return out;
}

RunOutcome RunParallelAdmitted(const Workload& w, DimsatOptions options,
                               exec::WorkStealingPool* pool,
                               exec::AdmissionGate* gate) {
  RunOutcome out;
  options.num_threads = pool->num_threads();
  options.pool = pool;
  options.admission = gate;
  DimsatResult r = DimsatParallel(w.ds, w.root, options, pool->num_threads());
  out.status = r.status;
  out.reported_satisfiable = r.satisfiable;
  for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
  return out;
}

RunOutcome RunReasonerLadder(const Workload& w, const DimsatOptions& base,
                             const Budget* budget) {
  RunOutcome out;
  ReasonerOptions options;
  options.dimsat = base;
  options.dimsat.num_threads = 1;
  options.initial_expand_budget = 16;
  options.max_attempts = 6;
  options.retry.max_retries = 2;
  options.retry.initial_backoff_ms = 0.1;
  Reasoner reasoner(w.ds, options);
  ReasonerAnswer answer = reasoner.QuerySatisfiable(w.root, budget);
  out.status = answer.reason;
  out.reported_satisfiable = answer.truth == Truth::kYes;
  return out;
}

/// Nested parallel request: a pool task that itself runs DimsatParallel
/// on the same pool (the shape of a parallel summarizability sweep,
/// where per-bottom tasks fan out further). The inner search's
/// TaskGroup::Wait then runs on a pool *worker*, driving the
/// worker-thread helping path — the exec.group_wait site.
RunOutcome RunNestedParallel(const Workload& w, DimsatOptions options,
                             exec::WorkStealingPool* pool) {
  RunOutcome out;
  options.num_threads = pool->num_threads();
  options.pool = pool;
  {
    exec::TaskGroup group(pool);
    group.Spawn([&] {
      DimsatResult r =
          DimsatParallel(w.ds, w.root, options, options.num_threads);
      out.status = std::move(r.status);
      out.reported_satisfiable = r.satisfiable;
      for (FrozenDimension& f : r.frozen) out.frozen.push_back(std::move(f));
    });
    group.Wait();
  }
  return out;
}

RunOutcome RunParseBoundary(const Workload& w, const Budget* budget) {
  RunOutcome out;
  Result<DimensionSchema> schema = ParseSchemaText(w.schema_text, budget);
  if (!schema.ok()) {
    out.status = schema.status();
    return out;
  }
  if (!w.instance_text.empty()) {
    Result<DimensionInstance> instance = ParseInstanceText(
        schema->hierarchy_ptr(), w.instance_text, false, budget);
    if (!instance.ok()) out.status = instance.status();
  }
  return out;
}

struct Violation {
  std::string site;
  double probability;
  std::string budget;
  int run;
  std::string what;
};

struct Campaign {
  uint64_t total_runs = 0;
  uint64_t total_cells = 0;
  uint64_t injected_failures = 0;
  uint64_t reported_sat = 0;
  uint64_t degraded = 0;  // non-OK statuses (taxonomy-conforming)
  std::vector<Violation> violations;
  std::map<std::string, uint64_t> runs_per_site;
  std::map<std::string, uint64_t> failures_per_site;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `crash_json` (optional): the serialized "crash_grid" object of a
/// --crash run, embedded next to the sweep's own sections.
bool WriteReport(const std::string& path, const Campaign& c, bool quick,
                 int runs_per_cell, int seeds,
                 const std::string* crash_json = nullptr) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmark\": \"chaos_campaign\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"runs_per_cell\": %d,\n  \"workload_seeds\": %d,\n",
               runs_per_cell, seeds);
  std::fprintf(f, "  \"cells\": %llu,\n  \"total_runs\": %llu,\n",
               static_cast<unsigned long long>(c.total_cells),
               static_cast<unsigned long long>(c.total_runs));
  std::fprintf(f, "  \"injected_failures\": %llu,\n",
               static_cast<unsigned long long>(c.injected_failures));
  std::fprintf(f, "  \"reported_satisfiable\": %llu,\n",
               static_cast<unsigned long long>(c.reported_sat));
  std::fprintf(f, "  \"degraded_runs\": %llu,\n",
               static_cast<unsigned long long>(c.degraded));
  std::fprintf(f, "  \"sites\": {\n");
  bool first = true;
  for (const auto& [site, runs] : c.runs_per_site) {
    std::fprintf(f, "%s    \"%s\": {\"runs\": %llu, \"injected\": %llu}",
                 first ? "" : ",\n", JsonEscape(site).c_str(),
                 static_cast<unsigned long long>(runs),
                 static_cast<unsigned long long>(
                     c.failures_per_site.count(site)
                         ? c.failures_per_site.at(site)
                         : 0));
    first = false;
  }
  std::fprintf(f, "\n  },\n");
  if (crash_json != nullptr) {
    std::fprintf(f, "  \"crash_grid\": %s,\n", crash_json->c_str());
  }
  std::fprintf(f, "  \"violations\": [");
  for (size_t i = 0; i < c.violations.size(); ++i) {
    const Violation& v = c.violations[i];
    std::fprintf(f,
                 "%s\n    {\"site\": \"%s\", \"probability\": %g, "
                 "\"budget\": \"%s\", \"run\": %d, \"what\": \"%s\"}",
                 i == 0 ? "" : ",", JsonEscape(v.site).c_str(), v.probability,
                 JsonEscape(v.budget).c_str(), v.run,
                 JsonEscape(v.what).c_str());
  }
  std::fprintf(f, "%s],\n", c.violations.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"invariants_held\": %s\n}\n",
               c.violations.empty() ? "true" : "false");
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------------
// Live-daemon soak (--daemon)
// ---------------------------------------------------------------------------

struct DaemonSoakConfig {
  int64_t duration_ms = 4000;
  uint64_t min_requests = 1200;
  double prob = 0.05;
  int client_threads = 4;
  int seeds = 3;
  std::string out_path = "chaos_daemon_report.json";
};

struct ClientTally {
  uint64_t sent = 0;
  uint64_t ok_2xx = 0;
  uint64_t shed_503 = 0;
  uint64_t other_4xx = 0;
  uint64_t other_5xx = 0;
  uint64_t transport = 0;
  uint64_t checkpoints = 0;
  uint64_t nondefinitive = 0;
  std::map<int, uint64_t> statuses;
  std::vector<int> unexpected_statuses;

  void Merge(const ClientTally& o) {
    sent += o.sent;
    ok_2xx += o.ok_2xx;
    shed_503 += o.shed_503;
    other_4xx += o.other_4xx;
    other_5xx += o.other_5xx;
    transport += o.transport;
    checkpoints += o.checkpoints;
    nondefinitive += o.nondefinitive;
    for (const auto& [code, n] : o.statuses) statuses[code] += n;
    unexpected_statuses.insert(unexpected_statuses.end(),
                               o.unexpected_statuses.begin(),
                               o.unexpected_statuses.end());
  }
};

/// One request shape of the soak mix.
struct SoakShape {
  std::string path;
  std::string body;
  bool raw = false;           // raw bytes instead of a framed POST
  bool expect_no_reply = false;  // client closes mid-request
  std::string raw_bytes;
};

std::vector<SoakShape> BuildSoakShapes(const std::vector<Workload>& workloads,
                                       size_t max_body_bytes) {
  std::vector<SoakShape> shapes;
  auto add = [&shapes](const char* path, std::string body) {
    SoakShape shape;
    shape.path = path;
    shape.body = std::move(body);
    shapes.push_back(std::move(shape));
  };
  auto check = [](const std::string& schema, const char* extra = "") {
    return "{\"schema\": \"" + schema +
           "\", \"category\": \"Base\", \"deadline_ms\": 250" + extra + "}";
  };
  for (size_t k = 0; k < workloads.size(); ++k) {
    const std::string name = "w" + std::to_string(k);
    add("/v1/check", check(name));
    // threads: 2 routes through the work-stealing pool — the exec.*
    // fault sites fire inside the serving thread's parallel run.
    add("/v1/check", check(name, ", \"threads\": 2"));
    // A 1ms deadline expires mid-search: 200 with "definitive": false
    // and (sequentially) a resumable checkpoint — the degraded mode.
    add("/v1/check", "{\"schema\": \"" + name +
                         "\", \"category\": \"Base\", \"deadline_ms\": 1}");
    // Re-registration races against in-flight reasoning on the same
    // name — the shared_ptr snapshot isolation under test.
    add("/v1/schemas", "{\"name\": \"" + name + "\", \"text\": " +
                           obs::JsonString(workloads[k].schema_text) + "}");
  }
  // The paper's location example: implies / summarizable / batch.
  add("/v1/implies",
      "{\"schema\": \"loc\", \"constraint\": \"Store/City\"}");
  add("/v1/summarizable",
      "{\"schema\": \"loc\", \"category\": \"Country\", "
      "\"sources\": [\"Store\"]}");
  add("/v1/batch",
      "{\"requests\": [{\"op\": \"check\", \"schema\": \"loc\", "
      "\"category\": \"Store\"}, {\"op\": \"implies\", \"schema\": "
      "\"loc\", \"constraint\": \"Store/City\"}, {\"op\": "
      "\"summarizable\", \"schema\": \"loc\", \"category\": "
      "\"Country\", \"sources\": [\"Store\"]}]}");
  // Hostile shapes — each must be a clean 4xx/405, never a crash.
  add("/v1/check", "{\"schema\": \"loc\", ");  // 400
  add("/v1/check", "{\"schema\": \"no-such\", \"category\": \"Base\"}");
  add("/v1/nonsense", "{}");  // 404
  add("/v1/check",
      "{\"schema\": \"loc\", \"category\": \"Base\", \"deadline_ms\": "
      "\"soon\"}");  // mistyped field -> 400
  add("/v1/check", std::string("{\"pad\": \"") +
                       std::string(max_body_bytes + 1024, 'x') +
                       "\"}");  // 413
  SoakShape get;  // GET on the request plane -> 405
  get.raw = true;
  get.raw_bytes = "GET /v1/check HTTP/1.1\r\nHost: x\r\n\r\n";
  shapes.push_back(get);
  SoakShape garbage;  // malformed request line -> 400, connection closed
  garbage.raw = true;
  garbage.raw_bytes = "EXPLODE now\r\n\r\n";
  shapes.push_back(garbage);
  SoakShape truncated;  // promises 100 bytes, delivers 9, hangs up
  truncated.raw = true;
  truncated.expect_no_reply = true;
  truncated.raw_bytes =
      "POST /v1/check HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n"
      "{\"trunc\":";
  shapes.push_back(truncated);
  return shapes;
}

void SoakWorker(int port, const std::vector<SoakShape>& shapes, size_t offset,
                int64_t deadline_us, uint64_t min_requests,
                std::atomic<uint64_t>* global_sent,
                std::atomic<bool>* stop, ClientTally* out) {
  auto now_us = [] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  tools::HttpClient client(port);
  size_t next = offset;
  while (!stop->load(std::memory_order_relaxed) &&
         (now_us() < deadline_us ||
          global_sent->load(std::memory_order_relaxed) < min_requests)) {
    const SoakShape& shape = shapes[next++ % shapes.size()];
    ++out->sent;
    global_sent->fetch_add(1, std::memory_order_relaxed);
    int status = -1;
    std::string body;
    if (shape.raw) {
      if (shape.expect_no_reply) {
        // Truncated POST: hang up mid-body. No response is owed; the
        // server must simply survive (and count a bad request).
        client.SendRaw(shape.raw_bytes);
        client.Close();
        ++out->transport;
        continue;
      }
      if (client.SendRaw(shape.raw_bytes)) {
        status = client.ReadResponse(&body);
      }
      client.Close();
    } else {
      status = client.Post(shape.path, shape.body, &body);
    }
    if (status < 0) {
      ++out->transport;
      client.Close();
      continue;
    }
    ++out->statuses[status];
    static const std::set<int> kAllowed = {200, 400, 404, 405,
                                           408, 413, 500, 503};
    if (kAllowed.count(status) == 0) {
      out->unexpected_statuses.push_back(status);
    }
    if (status == 503) {
      ++out->shed_503;
    } else if (status >= 500) {
      ++out->other_5xx;
    } else if (status >= 400) {
      ++out->other_4xx;
    } else {
      ++out->ok_2xx;
      if (body.find("\"checkpoint\"") != std::string::npos) {
        ++out->checkpoints;
      }
      if (body.find("\"definitive\": false") != std::string::npos) {
        ++out->nondefinitive;
      }
    }
  }
}

bool WriteDaemonReport(const std::string& path, const DaemonSoakConfig& cfg,
                       const ClientTally& tally, int64_t drain_ms,
                       bool drained, uint64_t server_requests,
                       uint64_t server_ok, uint64_t server_errors,
                       uint64_t server_shed, uint64_t server_checkpointed,
                       uint64_t injected,
                       const std::vector<Violation>& violations) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmark\": \"chaos_campaign\",\n");
  std::fprintf(f, "  \"mode\": \"daemon\",\n");
  std::fprintf(f, "  \"probability\": %g,\n  \"client_threads\": %d,\n",
               cfg.prob, cfg.client_threads);
  std::fprintf(f, "  \"requests_sent\": %llu,\n",
               static_cast<unsigned long long>(tally.sent));
  std::fprintf(
      f,
      "  \"client\": {\"ok\": %llu, \"shed\": %llu, \"http_4xx\": %llu, "
      "\"http_5xx\": %llu, \"transport\": %llu, \"checkpoints\": %llu, "
      "\"nondefinitive\": %llu},\n",
      static_cast<unsigned long long>(tally.ok_2xx),
      static_cast<unsigned long long>(tally.shed_503),
      static_cast<unsigned long long>(tally.other_4xx),
      static_cast<unsigned long long>(tally.other_5xx),
      static_cast<unsigned long long>(tally.transport),
      static_cast<unsigned long long>(tally.checkpoints),
      static_cast<unsigned long long>(tally.nondefinitive));
  std::fprintf(
      f,
      "  \"server\": {\"requests\": %llu, \"ok\": %llu, \"errors\": %llu, "
      "\"shed\": %llu, \"checkpointed\": %llu},\n",
      static_cast<unsigned long long>(server_requests),
      static_cast<unsigned long long>(server_ok),
      static_cast<unsigned long long>(server_errors),
      static_cast<unsigned long long>(server_shed),
      static_cast<unsigned long long>(server_checkpointed));
  std::fprintf(f, "  \"statuses\": {");
  bool first = true;
  for (const auto& [code, n] : tally.statuses) {
    std::fprintf(f, "%s\"%d\": %llu", first ? "" : ", ", code,
                 static_cast<unsigned long long>(n));
    first = false;
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"injected_failures\": %llu,\n",
               static_cast<unsigned long long>(injected));
  std::fprintf(f, "  \"sites\": {\n");
  first = true;
  for (const std::string& site : RegisteredFaultSites()) {
    std::fprintf(f, "%s    \"%s\": {\"probes\": %llu, \"injected\": %llu}",
                 first ? "" : ",\n", JsonEscape(site).c_str(),
                 static_cast<unsigned long long>(
                     FaultInjector::Global().probes(site)),
                 static_cast<unsigned long long>(
                     FaultInjector::Global().failures(site)));
    first = false;
  }
  std::fprintf(f, "\n  },\n");
  std::fprintf(f, "  \"drain_ms\": %lld,\n  \"drained\": %s,\n",
               static_cast<long long>(drain_ms), drained ? "true" : "false");
  std::fprintf(f, "  \"violations\": [");
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    std::fprintf(f,
                 "%s\n    {\"site\": \"%s\", \"probability\": %g, "
                 "\"budget\": \"%s\", \"run\": %d, \"what\": \"%s\"}",
                 i == 0 ? "" : ",", JsonEscape(v.site).c_str(), v.probability,
                 JsonEscape(v.budget).c_str(), v.run,
                 JsonEscape(v.what).c_str());
  }
  std::fprintf(f, "%s],\n", violations.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"invariants_held\": %s\n}\n",
               violations.empty() ? "true" : "false");
  std::fclose(f);
  return true;
}

int RunDaemonSoak(const DaemonSoakConfig& cfg) {
  obs::MetricsRegistry::Global().Enable();
  std::vector<Violation> violations;
  auto violate = [&](const std::string& what) {
    violations.push_back(Violation{"<daemon>", cfg.prob, "service", -1, what});
    std::fprintf(stderr, "VIOLATION [daemon soak]: %s\n", what.c_str());
  };

  // Workloads + the location example, registered before faults arm.
  std::vector<Workload> workloads;
  service::SchemaRegistry registry;
  for (int s = 0; s < cfg.seeds; ++s) {
    Result<Workload> w = MakeWorkload(s);
    if (!w.ok()) {
      std::fprintf(stderr, "workload %d generation failed: %s\n", s,
                   w.status().ToString().c_str());
      return 2;
    }
    workloads.push_back(std::move(w).ValueOrDie());
    Status registered = registry.Register(
        "w" + std::to_string(s), workloads.back().schema_text);
    if (!registered.ok()) {
      std::fprintf(stderr, "register w%d failed: %s\n", s,
                   registered.ToString().c_str());
      return 2;
    }
  }
  {
    Result<DimensionSchema> loc = LocationSchema();
    if (!loc.ok()) return 2;
    registry.RegisterParsed("loc", std::move(*loc));
  }

  // High-water below the server's concurrency so overload shedding
  // genuinely fires under the client fleet.
  exec::AdmissionGate gate(exec::AdmissionGate::Options{2, 25});
  service::DimService::Options service_options;
  service_options.registry = &registry;
  service_options.gate = &gate;
  service_options.default_deadline_ms = 250;
  service_options.max_deadline_ms = 2000;
  service_options.memory_budget_bytes = 16ull << 20;
  service_options.max_threads = 2;
  service_options.max_batch = 16;
  service::DimService service(service_options);

  constexpr size_t kMaxBodyBytes = 128 * 1024;
  obs::HttpServer server;
  obs::HttpServer::Options server_options;
  server_options.max_connections = 4;
  server_options.max_body_bytes = kMaxBodyBytes;
  server_options.read_timeout_ms = 2000;
  server_options.handler = [&](const obs::HttpRequest& request) {
    return service.HandleRequest(request);
  };
  if (!server.Start(server_options)) {
    std::fprintf(stderr, "daemon soak: server start failed: %s\n",
                 server.last_error().c_str());
    return 2;
  }

  // Arm EVERY registered site inside the serving threads.
  const std::vector<std::string> sites = RegisteredFaultSites();
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm(0x50a1c0de);
  const StatusCode rotation[] = {StatusCode::kInternal,
                                 StatusCode::kResourceExhausted,
                                 StatusCode::kDeadlineExceeded};
  for (size_t i = 0; i < sites.size(); ++i) {
    const StatusCode code =
        IsParseSite(sites[i]) ? StatusCode::kParseError : rotation[i % 3];
    injector.SetFault(sites[i], code, cfg.prob, "daemon-soak");
  }
  std::fprintf(stderr,
               "daemon soak: port %d, %zu sites armed at p=%g, %d client "
               "threads, >= %llu requests over >= %lld ms\n",
               server.port(), sites.size(), cfg.prob, cfg.client_threads,
               static_cast<unsigned long long>(cfg.min_requests),
               static_cast<long long>(cfg.duration_ms));

  const std::vector<SoakShape> shapes =
      BuildSoakShapes(workloads, kMaxBodyBytes);
  std::atomic<uint64_t> global_sent{0};
  std::atomic<bool> stop{false};
  std::vector<ClientTally> tallies(
      static_cast<size_t>(cfg.client_threads));
  std::vector<std::thread> clients;
  clients.reserve(tallies.size());
  // Workers run until the stop flag: the drain below fires while the
  // fleet is still hammering, so requests genuinely in flight at
  // BeginDrain() must complete, checkpoint, or shed — never vanish.
  for (size_t t = 0; t < tallies.size(); ++t) {
    clients.emplace_back(SoakWorker, server.port(), std::cref(shapes),
                         t * 3, INT64_MAX, cfg.min_requests, &global_sent,
                         &stop, &tallies[t]);
  }
  const auto load_start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - load_start <
             std::chrono::milliseconds(cfg.duration_ms) ||
         global_sent.load(std::memory_order_relaxed) < cfg.min_requests) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Graceful drain under live fire, with the same phased deadline
  // discipline as olapdcd's SIGTERM path: shed, wait, cancel, wait.
  constexpr int64_t kDrainDeadlineMs = 5000;
  const auto drain_start = std::chrono::steady_clock::now();
  server.BeginDrain();
  service.BeginDrain();
  bool drained = server.WaitDrained(kDrainDeadlineMs / 2);
  if (!drained) {
    service.CancelInFlight();
    drained = server.WaitDrained(kDrainDeadlineMs / 2);
  }
  const int64_t drain_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - drain_start)
          .count();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  server.Stop();

  ClientTally tally;
  for (const ClientTally& t : tallies) tally.Merge(t);

  // Invariant: the whole soak actually happened.
  if (tally.sent < cfg.min_requests) {
    violate("sent " + std::to_string(tally.sent) + " < minimum " +
            std::to_string(cfg.min_requests));
  }
  // Invariant: taxonomy-only response statuses.
  if (!tally.unexpected_statuses.empty()) {
    violate("response status outside the taxonomy: " +
            std::to_string(tally.unexpected_statuses.front()) + " (" +
            std::to_string(tally.unexpected_statuses.size()) +
            " occurrences)");
  }
  // Invariant: client-side conservation.
  const uint64_t accounted = tally.ok_2xx + tally.shed_503 +
                             tally.other_4xx + tally.other_5xx +
                             tally.transport;
  if (accounted != tally.sent) {
    violate("client conservation: sent " + std::to_string(tally.sent) +
            " != accounted " + std::to_string(accounted));
  }
  // The soak must exercise the real thing: some requests succeed,
  // overload shedding actually fires (the gate's high-water sits below
  // the client fleet's concurrency), and with every site armed, some
  // injections actually fire.
  if (tally.ok_2xx == 0) violate("no request ever succeeded");
  if (static_cast<int64_t>(cfg.client_threads) >
          gate.options().high_water &&
      tally.shed_503 == 0) {
    violate("admission gate never shed despite oversubscribed clients");
  }
  uint64_t injected = 0;
  for (const std::string& site : sites) injected += injector.failures(site);
  if (cfg.prob > 0 && injected == 0) {
    violate("every site armed but nothing ever injected");
  }
  // Invariant: server-side conservation at quiescence.
  const uint64_t server_total =
      service.ok() + service.errors() + service.shed();
  if (service.requests() != server_total) {
    violate("server conservation: requests " +
            std::to_string(service.requests()) + " != ok+errors+shed " +
            std::to_string(server_total));
  }
  // Invariant: drain completed inside the deadline, gate idle, memory
  // accounting back at zero.
  if (!drained) {
    violate("drain did not complete within " +
            std::to_string(kDrainDeadlineMs) + " ms");
  }
  if (gate.in_flight() != 0) {
    violate("admission gate left " + std::to_string(gate.in_flight()) +
            " in-flight after drain");
  }
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t reserved = snapshot.counter("olapdc.mem.reserved_bytes");
  const uint64_t released = snapshot.counter("olapdc.mem.released_bytes");
  if (reserved != released) {
    violate("reserved_bytes (" + std::to_string(reserved) +
            ") != released_bytes (" + std::to_string(released) +
            ") at quiescence");
  }

  const bool wrote = WriteDaemonReport(
      cfg.out_path, cfg, tally, drain_ms, drained, service.requests(),
      service.ok(), service.errors(), service.shed(), service.checkpointed(),
      injected, violations);
  injector.Disarm();
  if (!wrote) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 cfg.out_path.c_str());
    return 2;
  }
  std::fprintf(
      stderr,
      "daemon soak done: %llu sent (%llu ok, %llu shed, %llu 4xx, %llu "
      "5xx, %llu transport), %llu checkpoints, %llu injected, drain %lld "
      "ms, %zu violations -> %s\n",
      static_cast<unsigned long long>(tally.sent),
      static_cast<unsigned long long>(tally.ok_2xx),
      static_cast<unsigned long long>(tally.shed_503),
      static_cast<unsigned long long>(tally.other_4xx),
      static_cast<unsigned long long>(tally.other_5xx),
      static_cast<unsigned long long>(tally.transport),
      static_cast<unsigned long long>(tally.checkpoints),
      static_cast<unsigned long long>(injected),
      static_cast<long long>(drain_ms), violations.size(),
      cfg.out_path.c_str());
  return violations.empty() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Kill-9 crash grid (--crash / --crash-only)
// ---------------------------------------------------------------------------

struct CrashConfig {
  int kills = 200;
  std::string daemon_bin;
  std::string dir = "chaos_crash_tmp";
  int seeds = 2;
  uint64_t seed = 0xC4A5;
};

struct CrashGrid {
  int rounds = 0;
  int sigkills = 0;
  int clean_shutdowns = 0;
  int recoveries = 0;
  int torn_tail_recoveries = 0;
  int crc_drop_recoveries = 0;
  int corruptions_injected = 0;
  int fault_armed_rounds = 0;
  uint64_t warm_probes = 0;
  std::vector<Violation> violations;
};

struct CrashDaemon {
  pid_t pid = -1;
  int out_fd = -1;
  std::string pending;
};

bool SpawnCrashDaemon(const std::string& binary,
                      const std::vector<std::string>& args,
                      CrashDaemon* out) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    // 200 restarts of stderr lifecycle chatter would drown the grid's
    // own reporting; the invariants read stdout only.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  out->pid = pid;
  out->out_fd = fds[0];
  out->pending.clear();
  return true;
}

/// Next stdout line from the daemon, or false on EOF/deadline.
bool CrashReadLine(CrashDaemon* d,
                   std::chrono::steady_clock::time_point deadline,
                   std::string* line) {
  for (;;) {
    const size_t eol = d->pending.find('\n');
    if (eol != std::string::npos) {
      *line = d->pending.substr(0, eol);
      d->pending.erase(0, eol + 1);
      return true;
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;
    struct pollfd pfd;
    pfd.fd = d->out_fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (r <= 0) return false;
    char buf[4096];
    const ssize_t n = ::read(d->out_fd, buf, sizeof(buf));
    if (n <= 0) return false;
    d->pending.append(buf, static_cast<size_t>(n));
  }
}

/// 1/0 for a `"field": true/false` JSON member, -1 when absent.
int ExtractBool(const std::string& body, const std::string& field) {
  const std::string key = "\"" + field + "\": ";
  const size_t pos = body.find(key);
  if (pos == std::string::npos) return -1;
  if (body.compare(pos + key.size(), 4, "true") == 0) return 1;
  if (body.compare(pos + key.size(), 5, "false") == 0) return 0;
  return -1;
}

/// A warm-vs-cold probe: the response `field` must equal `expected`
/// (the unfaulted in-process ground truth) on every restart.
struct CrashProbe {
  std::string path;
  std::string body;
  std::string field;
  bool expected = false;
};

void CrashLoadWorker(int port,
                     const std::vector<std::pair<std::string, std::string>>*
                         shapes,
                     std::atomic<bool>* stop) {
  tools::HttpClient client(port);
  size_t i = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    const auto& [path, body] = (*shapes)[i++ % shapes->size()];
    std::string response;
    if (client.Post(path, body, &response) < 0) client.Close();
  }
}

int RunCrashGrid(const CrashConfig& cfg, CrashGrid* grid) {
  auto violate = [&](int round, const std::string& what) {
    grid->violations.push_back(
        Violation{"<crash>", 0.0, "crash-grid", round, what});
    std::fprintf(stderr, "VIOLATION [crash round %d]: %s\n", round,
                 what.c_str());
  };

  // Scratch dir, schema files, and the ground-truth registry (same
  // schema bytes the daemon will load, so same content epochs).
  ::mkdir(cfg.dir.c_str(), 0755);
  std::vector<std::string> base_args;
  service::SchemaRegistry registry;
  std::vector<Workload> workloads;
  auto add_schema = [&](const std::string& name,
                        const std::string& text) -> bool {
    const std::string path = cfg.dir + "/" + name + ".schema";
    std::ofstream out(path, std::ios::trunc);
    out << text;
    out.close();
    if (out.fail()) {
      std::fprintf(stderr, "crash grid: cannot write %s\n", path.c_str());
      return false;
    }
    base_args.push_back("--schema");
    base_args.push_back(name + "=" + path);
    return registry.Register(name, text).ok();
  };
  for (int s = 0; s < cfg.seeds; ++s) {
    Result<Workload> w = MakeWorkload(s);
    if (!w.ok()) {
      std::fprintf(stderr, "crash grid: workload %d failed: %s\n", s,
                   w.status().ToString().c_str());
      return 2;
    }
    workloads.push_back(std::move(w).ValueOrDie());
    if (!add_schema("w" + std::to_string(s), workloads.back().schema_text)) {
      return 2;
    }
  }
  {
    Result<DimensionSchema> loc = LocationSchema();
    if (!loc.ok() || !add_schema("loc", SerializeSchema(*loc))) return 2;
  }

  // Cold ground truth, computed in-process with no faults and a
  // generous deadline; every later warm answer must match it exactly.
  exec::AdmissionGate gate(exec::AdmissionGate::Options{16, 50});
  service::DimService::Options service_options;
  service_options.registry = &registry;
  service_options.gate = &gate;
  service_options.default_deadline_ms = 20000;
  service_options.max_deadline_ms = 30000;
  service_options.memory_budget_bytes = 64ull << 20;
  service_options.max_threads = 1;
  service_options.max_batch = 16;
  service::DimService truth_service(service_options);
  std::vector<CrashProbe> probes;
  auto add_probe = [&](const char* path, std::string body,
                       const char* field) -> bool {
    obs::HttpRequest request;
    request.method = "POST";
    request.path = path;
    request.body = body;
    const obs::HttpResponse response = truth_service.HandleRequest(request);
    const int v = ExtractBool(response.body, field);
    if (response.status != 200 ||
        ExtractBool(response.body, "definitive") != 1 || v < 0) {
      std::fprintf(stderr,
                   "crash grid: ground truth for %s failed (status %d)\n",
                   path, response.status);
      return false;
    }
    probes.push_back(CrashProbe{path, std::move(body), field, v == 1});
    return true;
  };
  for (size_t k = 0; k < workloads.size(); ++k) {
    if (!add_probe("/v1/check",
                   "{\"schema\": \"w" + std::to_string(k) +
                       "\", \"category\": \"Base\", \"deadline_ms\": 20000}",
                   "satisfiable")) {
      return 2;
    }
  }
  if (!add_probe("/v1/implies",
                 "{\"schema\": \"loc\", \"constraint\": \"Store/City\"}",
                 "implied") ||
      !add_probe("/v1/summarizable",
                 "{\"schema\": \"loc\", \"category\": \"Country\", "
                 "\"sources\": [\"Store\"]}",
                 "summarizable")) {
    return 2;
  }

  // The hammer mix: the probes plus short- and 1ms-deadline checks
  // (checkpoints, no-good learning) so kills land mid-reasoning and
  // mid-snapshot with real cache state on the line.
  std::vector<std::pair<std::string, std::string>> load_shapes;
  for (const CrashProbe& p : probes) load_shapes.emplace_back(p.path, p.body);
  for (size_t k = 0; k < workloads.size(); ++k) {
    const std::string name = "w" + std::to_string(k);
    load_shapes.emplace_back(
        "/v1/check", "{\"schema\": \"" + name +
                         "\", \"category\": \"Base\", \"deadline_ms\": 150}");
    load_shapes.emplace_back(
        "/v1/check", "{\"schema\": \"" + name +
                         "\", \"category\": \"Base\", \"deadline_ms\": 1}");
  }

  const std::string snap = cfg.dir + "/snap";
  ::unlink(snap.c_str());
  ::unlink((snap + ".tmp").c_str());
  base_args.insert(base_args.end(),
                   {"--port", "0", "--snapshot-file", snap,
                    "--snapshot-interval-ms", "10", "--cache-budget-mb", "8",
                    "--request-deadline-ms", "20000", "--max-deadline-ms",
                    "30000", "--drain-timeout-ms", "4000"});

  std::mt19937_64 rng(cfg.seed);
  int64_t last_clean_nogoods = -1;
  bool ever_salvaged = false;

  for (int round = 0; round < cfg.kills; ++round) {
    const bool fault_round = round % 7 == 3;
    // Every 8th round ends in a graceful SIGTERM instead of SIGKILL —
    // the monotonicity anchor: what that drain reports saved, the very
    // next startup must recover.
    const bool clean_round = round % 8 == 5;
    // Harness-side corruption: bit-flip or torn-truncate the snapshot
    // before restart (never between a clean save and its monotonicity
    // check — corruption legitimately loses records).
    if (last_clean_nogoods < 0 && round % 4 == 2) {
      std::fstream file(snap,
                        std::ios::binary | std::ios::in | std::ios::out);
      file.seekg(0, std::ios::end);
      const int64_t size = file.tellg();
      if (file && size > 0) {
        const uint64_t offset = rng() % static_cast<uint64_t>(size);
        if (rng() % 2 == 0) {
          file.seekg(static_cast<std::streamoff>(offset));
          char byte = 0;
          file.read(&byte, 1);
          byte = static_cast<char>(byte ^ 0x40);
          file.seekp(static_cast<std::streamoff>(offset));
          file.write(&byte, 1);
          file.close();
        } else {
          file.close();
          if (::truncate(snap.c_str(), static_cast<off_t>(offset)) != 0) {
            // Removal also models a lost file; recovery must cope.
            ::unlink(snap.c_str());
          }
        }
        ++grid->corruptions_injected;
      }
    }

    std::vector<std::string> args = base_args;
    if (fault_round) {
      // Injected write/fsync/rename failures *inside* the snapshot
      // plane: periodic snapshots fail and retry, and the durable-file
      // contract (temp unlinked, previous snapshot intact) is what
      // keeps the next recovery working.
      args.insert(args.end(),
                  {"--fault-site", "durable.write", "--fault-site",
                   "durable.fsync", "--fault-site", "durable.rename",
                   "--fault-prob", "0.25", "--fault-seed",
                   std::to_string(round + 1)});
      ++grid->fault_armed_rounds;
    }

    CrashDaemon daemon;
    if (!SpawnCrashDaemon(cfg.daemon_bin, args, &daemon)) {
      std::fprintf(stderr, "crash grid: cannot spawn %s\n",
                   cfg.daemon_bin.c_str());
      return 2;
    }
    // Invariant A: startup always reaches "listening", whatever state
    // the previous round left the snapshot in.
    int port = 0;
    bool recovered = false;
    unsigned long long r_seq = 0, r_nogoods = 0, r_torn = 0, r_crc = 0;
    {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      std::string line;
      while (port == 0 && CrashReadLine(&daemon, deadline, &line)) {
        if (std::sscanf(line.c_str(),
                        "olapdcd recovered snapshot seq=%llu nogoods=%llu "
                        "torn=%llu crc_drops=%llu",
                        &r_seq, &r_nogoods, &r_torn, &r_crc) == 4) {
          recovered = true;
        }
        std::sscanf(line.c_str(), "olapdcd listening on port %d", &port);
      }
    }
    if (port == 0) {
      violate(round,
              "daemon failed to reach 'listening' after restart — startup "
              "died on the recovered snapshot");
      ::kill(daemon.pid, SIGKILL);
      ::waitpid(daemon.pid, nullptr, 0);
      ::close(daemon.out_fd);
      ++grid->rounds;
      break;  // every later round would re-report the same broken state
    }
    if (recovered) {
      ++grid->recoveries;
      grid->torn_tail_recoveries += static_cast<int>(r_torn);
      grid->crc_drop_recoveries += static_cast<int>(r_crc);
      if (r_torn > 0 || r_crc > 0) ever_salvaged = true;
      // Invariant C: learned pruning never goes backwards across a
      // clean restart.
      if (last_clean_nogoods >= 0 &&
          static_cast<int64_t>(r_nogoods) < last_clean_nogoods) {
        violate(round, "no-good count went backwards across a clean "
                       "restart: saved " +
                           std::to_string(last_clean_nogoods) +
                           ", recovered " + std::to_string(r_nogoods));
      }
    } else if (last_clean_nogoods >= 0) {
      violate(round, "clean shutdown saved a snapshot but the next "
                     "startup recovered nothing");
    }
    last_clean_nogoods = -1;

    // Invariant B: warm answers equal the cold ground truth.
    {
      tools::HttpClient client(port);
      for (const CrashProbe& probe : probes) {
        std::string body;
        const int status = client.Post(probe.path, probe.body, &body);
        ++grid->warm_probes;
        if (status != 200) {
          violate(round, "probe " + probe.path + " returned status " +
                             std::to_string(status) + " after restart");
          client.Close();
          continue;
        }
        if (ExtractBool(body, "definitive") != 1) {
          violate(round, "probe " + probe.path +
                             " not definitive despite a 20s deadline");
          continue;
        }
        const int v = ExtractBool(body, probe.field);
        if (v != (probe.expected ? 1 : 0)) {
          violate(round, "warm answer diverged from cold recomputation: " +
                             probe.path + " " + probe.field + " = " +
                             std::to_string(v) + ", expected " +
                             std::to_string(probe.expected ? 1 : 0));
        }
      }
    }

    // Load, then kill at a randomized point (snapshots rewrite every
    // 10ms, so kills land before, during, and after durable writes).
    std::atomic<bool> stop{false};
    std::thread hammer(CrashLoadWorker, port, &load_shapes, &stop);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(3 + static_cast<int>(rng() % 120)));
    if (clean_round) {
      stop.store(true, std::memory_order_relaxed);
      hammer.join();
      ::kill(daemon.pid, SIGTERM);
      unsigned long long s_seq = 0, s_nogoods = 0;
      bool saved = false;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      std::string line;
      while (CrashReadLine(&daemon, deadline, &line)) {
        if (std::sscanf(line.c_str(),
                        "olapdcd snapshot saved seq=%llu nogoods=%llu",
                        &s_seq, &s_nogoods) == 2) {
          saved = true;
        }
      }
      int wstatus = 0;
      ::waitpid(daemon.pid, &wstatus, 0);
      const int code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128;
      if (code != 0) {
        violate(round,
                "graceful shutdown exited " + std::to_string(code));
      }
      if (saved) {
        last_clean_nogoods = static_cast<int64_t>(s_nogoods);
      } else {
        violate(round, "graceful shutdown never reported a saved snapshot");
      }
      ++grid->clean_shutdowns;
    } else {
      ::kill(daemon.pid, SIGKILL);
      stop.store(true, std::memory_order_relaxed);
      hammer.join();
      ::waitpid(daemon.pid, nullptr, 0);
      ++grid->sigkills;
    }
    ::close(daemon.out_fd);
    ++grid->rounds;
  }

  // A grid that never salvaged a torn/corrupt snapshot never tested
  // recovery — the corruption rounds above make that overwhelmingly
  // unlikely on a real grid, so silence means the plumbing is broken.
  if (cfg.kills >= 50 && !ever_salvaged) {
    violate(-1, "grid never observed a torn/CRC salvage — recovery was "
                "not exercised");
  }
  std::fprintf(stderr,
               "crash grid done: %d rounds (%d SIGKILL, %d clean), %d "
               "recoveries (%d torn, %d crc), %d corruptions, %d fault "
               "rounds, %llu warm probes, %zu violations\n",
               grid->rounds, grid->sigkills, grid->clean_shutdowns,
               grid->recoveries, grid->torn_tail_recoveries,
               grid->crc_drop_recoveries, grid->corruptions_injected,
               grid->fault_armed_rounds,
               static_cast<unsigned long long>(grid->warm_probes),
               grid->violations.size());
  return 0;
}

std::string CrashGridJson(const CrashGrid& grid) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"rounds\": %d, \"sigkills\": %d, \"clean_shutdowns\": %d, "
      "\"recoveries\": %d, \"torn_tail_recoveries\": %d, "
      "\"crc_drop_recoveries\": %d, \"corruptions_injected\": %d, "
      "\"fault_armed_rounds\": %d, \"warm_probes\": %llu, "
      "\"invariants_held\": %s}",
      grid.rounds, grid.sigkills, grid.clean_shutdowns, grid.recoveries,
      grid.torn_tail_recoveries, grid.crc_drop_recoveries,
      grid.corruptions_injected, grid.fault_armed_rounds,
      static_cast<unsigned long long>(grid.warm_probes),
      grid.violations.empty() ? "true" : "false");
  return buf;
}

bool WriteCrashReport(const std::string& path, const CrashGrid& grid) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmark\": \"chaos_campaign\",\n");
  std::fprintf(f, "  \"mode\": \"crash\",\n");
  std::fprintf(f, "  \"crash_grid\": %s,\n", CrashGridJson(grid).c_str());
  std::fprintf(f, "  \"violations\": [");
  for (size_t i = 0; i < grid.violations.size(); ++i) {
    const Violation& v = grid.violations[i];
    std::fprintf(f,
                 "%s\n    {\"site\": \"%s\", \"probability\": %g, "
                 "\"budget\": \"%s\", \"run\": %d, \"what\": \"%s\"}",
                 i == 0 ? "" : ",", JsonEscape(v.site).c_str(), v.probability,
                 JsonEscape(v.budget).c_str(), v.run,
                 JsonEscape(v.what).c_str());
  }
  std::fprintf(f, "%s],\n", grid.violations.empty() ? "" : "\n  ");
  std::fprintf(f, "  \"invariants_held\": %s\n}\n",
               grid.violations.empty() ? "true" : "false");
  std::fclose(f);
  return true;
}

int Main(int argc, char** argv) {
  int runs_per_cell = 11;
  int seeds = 6;
  bool quick = false;
  bool daemon = false;
  bool crash = false;
  bool crash_only = false;
  DaemonSoakConfig daemon_cfg;
  CrashConfig crash_cfg;
  int crash_kills = -1;  // <0: mode default (200 full, 10 quick)
  bool out_path_set = false;
  std::string out_path = "BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--runs-per-cell") {
      runs_per_cell = std::atoi(value());
    } else if (arg == "--seeds") {
      seeds = std::atoi(value());
    } else if (arg == "--out") {
      out_path = value();
      out_path_set = true;
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--daemon") {
      daemon = true;
    } else if (arg == "--daemon-duration-ms") {
      daemon_cfg.duration_ms = std::atoll(value());
    } else if (arg == "--daemon-min-requests") {
      daemon_cfg.min_requests = static_cast<uint64_t>(std::atoll(value()));
    } else if (arg == "--daemon-prob") {
      daemon_cfg.prob = std::atof(value());
    } else if (arg == "--daemon-threads") {
      daemon_cfg.client_threads = std::atoi(value());
    } else if (arg == "--crash") {
      crash = true;
    } else if (arg == "--crash-only") {
      crash = true;
      crash_only = true;
    } else if (arg == "--crash-kills") {
      crash_kills = std::atoi(value());
    } else if (arg == "--crash-daemon-bin") {
      crash_cfg.daemon_bin = value();
    } else if (arg == "--crash-dir") {
      crash_cfg.dir = value();
    } else {
      std::fprintf(stderr,
                   "usage: chaos_campaign [--runs-per-cell n] [--seeds n] "
                   "[--out path] [--quick] [--daemon "
                   "[--daemon-duration-ms n] [--daemon-min-requests n] "
                   "[--daemon-prob p] [--daemon-threads n]] "
                   "[--crash | --crash-only] [--crash-kills n] "
                   "[--crash-daemon-bin path] [--crash-dir path]\n");
      return 2;
    }
  }
  if (crash) {
    crash_cfg.kills = crash_kills > 0 ? crash_kills : (quick ? 10 : 200);
    if (crash_cfg.daemon_bin.empty()) {
      // Default: the olapdcd built next to this binary.
      std::string self = argv[0];
      const size_t slash = self.find_last_of('/');
      crash_cfg.daemon_bin =
          (slash == std::string::npos ? std::string(".")
                                      : self.substr(0, slash)) +
          "/olapdcd";
    }
    if (::access(crash_cfg.daemon_bin.c_str(), X_OK) != 0) {
      std::fprintf(stderr, "error: no executable olapdcd at '%s' "
                   "(--crash-daemon-bin)\n",
                   crash_cfg.daemon_bin.c_str());
      return 2;
    }
  }
  if (crash_only) {
    if (!out_path_set) out_path = "chaos_crash_report.json";
    CrashGrid grid;
    const int rc = RunCrashGrid(crash_cfg, &grid);
    if (rc != 0) return rc;
    if (!WriteCrashReport(out_path, grid)) {
      std::fprintf(stderr, "error: cannot write report to '%s'\n",
                   out_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "crash grid report -> %s\n", out_path.c_str());
    return grid.violations.empty() ? 0 : 1;
  }
  if (daemon) {
    if (daemon_cfg.duration_ms < 1 || daemon_cfg.client_threads < 1 ||
        daemon_cfg.prob < 0 || daemon_cfg.prob > 1) {
      std::fprintf(stderr, "error: bad --daemon-* flag values\n");
      return 2;
    }
    daemon_cfg.seeds = seeds == 6 ? 3 : seeds;
    if (out_path_set) daemon_cfg.out_path = out_path;
    return RunDaemonSoak(daemon_cfg);
  }
  if (quick) {
    runs_per_cell = 5;  // one run of every request shape
    seeds = 2;
  }
  if (runs_per_cell < 1 || seeds < 1) {
    std::fprintf(stderr, "error: --runs-per-cell and --seeds must be >= 1\n");
    return 2;
  }

  obs::MetricsRegistry::Global().Enable();

  // Ground truth first, with the injector disarmed.
  std::vector<Workload> workloads;
  for (int s = 0; s < seeds; ++s) {
    Result<Workload> w = MakeWorkload(s);
    if (!w.ok()) {
      std::fprintf(stderr, "workload %d generation failed: %s\n", s,
                   w.status().ToString().c_str());
      return 2;
    }
    workloads.push_back(std::move(w).ValueOrDie());
  }

  const std::vector<std::string> sites = RegisteredFaultSites();
  std::vector<double> probabilities(std::begin(kProbabilities),
                                    std::end(kProbabilities));
  std::vector<BudgetConfig> budgets(std::begin(kBudgetConfigs),
                                    std::end(kBudgetConfigs));
  if (quick) {
    probabilities = {0.5};
    budgets = {kBudgetConfigs[0], kBudgetConfigs[2]};
  }

  std::fprintf(stderr,
               "chaos campaign: %zu sites x %zu probabilities x %zu budgets "
               "x %d runs\n",
               sites.size(), probabilities.size(), budgets.size(),
               runs_per_cell);

  exec::WorkStealingPool pool(2);
  Campaign campaign;
  const StatusCode rotation[] = {StatusCode::kInternal,
                                 StatusCode::kResourceExhausted,
                                 StatusCode::kDeadlineExceeded};

  for (const std::string& site : sites) {
    for (double prob : probabilities) {
      for (const BudgetConfig& bc : budgets) {
        ++campaign.total_cells;
        FaultInjector& injector = FaultInjector::Global();
        const uint64_t cell_seed = campaign.total_cells * 2654435761ull;
        injector.Arm(cell_seed);

        uint64_t cell_probes = 0;
        uint64_t cell_failures = 0;
        for (int run = 0; run < runs_per_cell; ++run) {
          const Workload& w = workloads[run % workloads.size()];
          const StatusCode injected =
              IsParseSite(site) ? StatusCode::kParseError
                                : rotation[run % 3];
          // SetFault resets the site's counters, so per-run deltas are
          // accumulated before the next run reconfigures it.
          injector.SetFault(site, injected, prob, "chaos");

          // Per-run budget; memory budgets are sticky-once-exhausted,
          // so each run gets a fresh one.
          std::optional<MemoryBudget> mem;
          Budget budget = Budget::Unbounded();
          if (bc.deadline_ms >= 0) {
            budget.SetDeadline(Budget::Clock::now() +
                               std::chrono::milliseconds(bc.deadline_ms));
          }
          if (bc.memory_bytes > 0) {
            mem.emplace(bc.memory_bytes);
            budget.SetMemory(&*mem);
          }
          DimsatOptions options;
          options.enumerate_all = true;
          options.max_frozen = 64;
          options.budget_check_stride = 16;
          if (!budget.unbounded()) options.budget = &budget;
          if (bc.max_expand_calls > 0) {
            options.max_expand_calls = bc.max_expand_calls;
          }

          exec::AdmissionGate gate;
          RunOutcome outcome;
          switch (run % 5) {
            case 0:
              outcome = RunSequentialWithResume(w, options);
              break;
            case 1:
              outcome = RunParallelAdmitted(w, options, &pool, &gate);
              break;
            case 2:
              outcome = RunReasonerLadder(w, options, options.budget);
              break;
            case 3:
              outcome = RunNestedParallel(w, options, &pool);
              break;
            default:
              outcome = RunParseBoundary(w, options.budget);
              break;
          }
          ++campaign.total_runs;
          ++campaign.runs_per_site[site];

          auto violate = [&](const std::string& what) {
            campaign.violations.push_back(
                Violation{site, prob, bc.name, run, what});
            std::fprintf(stderr, "VIOLATION [%s p=%g %s run %d]: %s\n",
                         site.c_str(), prob, bc.name, run, what.c_str());
          };

          // Invariant 2: taxonomy-only failure codes.
          const StatusCode code = outcome.status.code();
          const bool taxonomy_ok =
              code == StatusCode::kOk || code == injected ||
              code == StatusCode::kResourceExhausted ||
              code == StatusCode::kDeadlineExceeded ||
              code == StatusCode::kCancelled ||
              code == StatusCode::kUnavailable;
          if (!taxonomy_ok) {
            violate("unclassified status: " + outcome.status.ToString());
          }
          if (!outcome.status.ok()) ++campaign.degraded;

          // Invariants 3+4: witnesses are genuine and confirmed by the
          // unfaulted baseline.
          if (outcome.reported_satisfiable) {
            ++campaign.reported_sat;
            if (!w.satisfiable) {
              violate("faulted run reported SATISFIABLE on an " +
                      std::string("unsatisfiable workload"));
            }
          }
          for (const FrozenDimension& f : outcome.frozen) {
            Status valid = f.ToInstance(w.ds).status();
            if (!valid.ok()) {
              violate("invalid witness: " + valid.ToString());
              break;
            }
          }

          // Invariant 5: the request released everything it held.
          if (gate.in_flight() != 0) {
            violate("admission gate left in-flight work behind");
          }
          if (mem.has_value() && mem->reserved() != 0) {
            violate("memory accounting leaked " +
                    std::to_string(mem->reserved()) + " bytes");
          }
          cell_probes += injector.probes(site);
          cell_failures += injector.failures(site);
        }

        campaign.injected_failures += cell_failures;
        campaign.failures_per_site[site] += cell_failures;
        // High-probability cells over real probe traffic must actually
        // inject — a silent dead site means the sweep isn't sweeping.
        if (prob >= 0.5 && cell_probes >= 8 && cell_failures == 0) {
          campaign.violations.push_back(Violation{
              site, prob, bc.name, -1,
              "site probed " + std::to_string(cell_probes) +
                  " times but injected nothing"});
        }
        injector.Disarm();
      }
    }
  }

  // Invariant 6: campaign-wide metrics consistency at quiescence.
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t reserved = snapshot.counter("olapdc.mem.reserved_bytes");
  const uint64_t released = snapshot.counter("olapdc.mem.released_bytes");
  if (reserved != released) {
    campaign.violations.push_back(
        Violation{"<metrics>", 0, "<all>", -1,
                  "reserved_bytes (" + std::to_string(reserved) +
                      ") != released_bytes (" + std::to_string(released) +
                      ") at quiescence"});
  }

  // The kill-9 crash grid rides behind the sweep (--crash), embedding
  // its section and folding its violations into the one verdict.
  std::optional<std::string> crash_json;
  if (crash) {
    CrashGrid grid;
    const int rc = RunCrashGrid(crash_cfg, &grid);
    if (rc != 0) return rc;
    crash_json = CrashGridJson(grid);
    for (Violation& v : grid.violations) {
      campaign.violations.push_back(std::move(v));
    }
  }

  if (!WriteReport(out_path, campaign, quick, runs_per_cell, seeds,
                   crash_json ? &*crash_json : nullptr)) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 out_path.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "chaos campaign done: %llu runs, %llu injected failures, "
               "%zu violations -> %s\n",
               static_cast<unsigned long long>(campaign.total_runs),
               static_cast<unsigned long long>(campaign.injected_failures),
               campaign.violations.size(), out_path.c_str());
  return campaign.violations.empty() ? 0 : 1;
}

}  // namespace
}  // namespace olapdc

int main(int argc, char** argv) { return olapdc::Main(argc, argv); }
