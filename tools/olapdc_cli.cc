// olapdc — command-line front end for the dimension-constraint
// reasoner.
//
//   olapdc check <schema-file>
//       Parse the schema and audit every category's satisfiability;
//       for unsatisfiable categories, print a minimal conflicting
//       constraint core.
//   olapdc frozen <schema-file> <root-category>
//       Enumerate the frozen dimensions with the given root.
//   olapdc implies <schema-file> <constraint...>
//       Decide ds |= alpha; print a counterexample structure if not.
//   olapdc summarizable <schema-file> <target> <source>...
//       Theorem 1 test: is <target> summarizable from the sources?
//   olapdc minimize <schema-file>
//       Print the schema with redundant constraints removed.
//   olapdc dot <schema-file>
//       Emit the hierarchy as Graphviz.
//   olapdc validate <schema-file> <instance-file>
//       Load an instance, run C1-C7 validation and the Sigma model
//       check.
//   olapdc mine <schema-file> <instance-file>
//       Learn dimension constraints from the instance and print the
//       resulting schema.
//
// Global flags:
//   --deadline-ms <n>   Wall-clock budget for the reasoning work. On
//                       expiration the command degrades (prints
//                       "unknown" / partial output) and exits with the
//                       deadline-exceeded code instead of hanging.
//   --memory-budget-mb <n>  Byte cap (in MiB) on the reasoning working
//                       set (estimate-based governor; see
//                       docs/robustness.md). On exhaustion the command
//                       degrades with kResourceExhausted the same way a
//                       deadline does.
//   --threads <n>       Worker parallelism for the DIMSAT searches
//                       (work-stealing pool; src/exec). Defaults to
//                       OLAPDC_THREADS when set, else 1.
//   --metrics-json <path>  Enable the metrics registry and write the
//                       final snapshot (olapdc.* counters, gauges,
//                       latency histograms) to <path> as JSON.
//   --trace <path>      Stream structured trace spans (one JSON object
//                       per line) to <path> while the command runs.
//   --serve-port <n>    Start the telemetry server on 127.0.0.1:<n>
//                       (0 = ephemeral; the bound port is printed).
//                       Serves /metrics (Prometheus), /varz (JSON),
//                       /healthz, /tracez. Implies metrics + a span
//                       ring for /tracez.
//   --serve-linger-ms <n>  Keep the telemetry server up <n> ms after
//                       the command finishes (scrape/smoke windows).
//   --explain           Record every DIMSAT EXPAND decision and print
//                       the explain report (each prune-rule firing
//                       with its depth) to stderr when done.
//   --explain-trace <path>  Also write the decisions as Chrome
//                       trace_event JSON (open in ui.perfetto.dev).
//                       Implies --explain.
//   --admission-high-water <n>  Shed parallel requests beyond <n>
//                       concurrent admissions (exit 18; /healthz
//                       degrades while saturated).
//   Value flags also accept the --flag=value spelling.
//
// Exit codes: 0 = success / affirmative answer; 1 = definitive negative
// answer (NOT IMPLIED, UNSATISFIABLE, ...); 2 = usage error; otherwise
// a distinct code per StatusCode (see ExitCodeFor below) so scripts can
// tell a parse error from a timeout from a missing file.

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/memory_budget.h"
#include "obs/metrics.h"
#include "obs/search_tree.h"
#include "obs/span.h"
#include "obs/telemetry_server.h"
#include "constraint/evaluator.h"
#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/diagnostics.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/mining.h"
#include "core/report.h"
#include "core/summarizability.h"
#include "exec/admission.h"
#include "exec/work_stealing_pool.h"
#include "io/instance_io.h"
#include "io/schema_io.h"

namespace olapdc {
namespace {

constexpr int kExitAnswerNo = 1;
constexpr int kExitUsage = 2;

/// One distinct process exit code per error class, so shell scripts and
/// orchestration can branch on the failure mode without parsing stderr.
int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 10;
    case StatusCode::kInvalidModel: return 11;
    case StatusCode::kParseError: return 12;
    case StatusCode::kResourceExhausted: return 13;
    case StatusCode::kNotFound: return 14;
    case StatusCode::kInternal: return 15;
    case StatusCode::kDeadlineExceeded: return 16;
    case StatusCode::kCancelled: return 17;
    case StatusCode::kUnavailable: return 18;
  }
  return 15;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status.code());
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: olapdc <command> <schema-file> [args...] [--deadline-ms <n>]\n"
      "  check <schema>                     satisfiability audit\n"
      "  frozen <schema> <root>             enumerate frozen dimensions\n"
      "  implies <schema> <constraint...>   decide ds |= alpha\n"
      "  summarizable <schema> <target> <source>...\n"
      "  minimize <schema>                  drop redundant constraints\n"
      "  report <schema>                    heterogeneity report\n"
      "  dot <schema>                       Graphviz of the hierarchy\n"
      "  validate <schema> <instance>       C1-C7 + Sigma model check\n"
      "  mine <schema> <instance>           learn constraints from data\n"
      "global flags: --deadline-ms <n>, --memory-budget-mb <n>, "
      "--threads <n>, --metrics-json <path>, --trace <path>,\n"
      "  --serve-port <n>, --serve-linger-ms <n>, --explain, "
      "--explain-trace <path>, --admission-high-water <n>\n"
      "exit codes: 0 yes/ok, 1 no, 2 usage, 10-18 one per error class\n"
      "  (16 = deadline exceeded, 17 = cancelled, 18 = overloaded)\n");
  return kExitUsage;
}

/// The per-invocation resource envelope: the --deadline-ms wall-clock
/// budget, the --memory-budget-mb byte cap, and the --threads /
/// OLAPDC_THREADS worker parallelism.
struct CliBudget {
  Budget budget;
  /// Owns the MemoryBudget the Budget points at (shared so the struct
  /// stays copyable; the CLI never mutates it after flag parsing).
  std::shared_ptr<MemoryBudget> memory;
  /// --admission-high-water overload gate (shared for copyability; the
  /// telemetry /healthz probe also reads it).
  std::shared_ptr<exec::AdmissionGate> admission;
  bool bounded = false;
  int threads = 1;
  const Budget* get() const { return bounded ? &budget : nullptr; }
  /// Stamps this envelope onto one command's DimsatOptions.
  void Apply(DimsatOptions* options) const {
    options->budget = get();
    options->num_threads = threads;
    options->admission = admission.get();
  }
};

void PrintPartialStats(const DimsatStats& stats) {
  std::fprintf(stderr,
               "partial work before the budget expired: %llu EXPAND calls, "
               "%llu CHECK calls, %llu assignments\n",
               static_cast<unsigned long long>(stats.expand_calls),
               static_cast<unsigned long long>(stats.check_calls),
               static_cast<unsigned long long>(stats.assignments_tried));
}

int Check(const DimensionSchema& ds, const CliBudget& budget) {
  const HierarchySchema& schema = ds.hierarchy();
  DimsatOptions options;
  budget.Apply(&options);
  bool all_ok = true;
  Status degraded;
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    Result<bool> satisfiable = IsCategorySatisfiable(ds, c, options);
    if (!satisfiable.ok()) {
      if (!IsBudgetError(satisfiable.status())) return Fail(satisfiable.status());
      // Degrade: report this category as unknown and keep auditing the
      // rest under what remains of the budget.
      degraded = satisfiable.status();
      std::printf("%-20s unknown (%s)\n", schema.CategoryName(c).c_str(),
                  std::string(StatusCodeToString(satisfiable.status().code()))
                      .c_str());
      continue;
    }
    std::printf("%-20s %s\n", schema.CategoryName(c).c_str(),
                *satisfiable ? "satisfiable" : "UNSATISFIABLE");
    if (!*satisfiable) {
      all_ok = false;
      Result<std::vector<size_t>> core = UnsatisfiableCore(ds, c, options);
      if (core.ok()) {
        std::printf("  conflicting constraints:\n");
        for (size_t i : *core) {
          std::printf("    %s\n",
                      ConstraintToString(schema, ds.constraints()[i]).c_str());
        }
      }
    }
  }
  if (!degraded.ok()) return Fail(degraded);
  return all_ok ? 0 : kExitAnswerNo;
}

int Frozen(const DimensionSchema& ds, const std::string& root_name,
           const CliBudget& budget) {
  Result<CategoryId> root = ds.hierarchy().CategoryIdOf(root_name);
  if (!root.ok()) return Fail(root.status());
  DimsatOptions options;
  budget.Apply(&options);
  DimsatResult r = EnumerateFrozenDimensions(ds, *root, options);
  if (!r.status.ok() && !IsBudgetError(r.status)) return Fail(r.status);
  std::printf("%zu frozen dimension(s) with root %s%s:\n", r.frozen.size(),
              root_name.c_str(),
              r.status.ok() ? "" : " (partial: budget expired)");
  for (const FrozenDimension& f : r.frozen) {
    std::printf("  %s\n", f.ToString(ds.hierarchy()).c_str());
  }
  if (!r.status.ok()) {
    PrintPartialStats(r.stats);
    return Fail(r.status);
  }
  return 0;
}

int ImpliesCmd(const DimensionSchema& ds, const std::string& text,
               const CliBudget& budget) {
  Result<DimensionConstraint> alpha =
      ParseConstraint(ds.hierarchy(), text);
  if (!alpha.ok()) return Fail(alpha.status());
  DimsatOptions options;
  budget.Apply(&options);
  Result<ImplicationResult> r = Implies(ds, *alpha, options);
  if (!r.ok()) return Fail(r.status());
  if (!r->status.ok()) {
    std::printf("UNKNOWN\n");
    PrintPartialStats(r->stats);
    return Fail(r->status);
  }
  if (r->implied) {
    std::printf("IMPLIED\n");
    return 0;
  }
  std::printf("NOT IMPLIED\n");
  if (r->counterexample.has_value()) {
    std::printf("counterexample: %s\n",
                r->counterexample->ToString(ds.hierarchy()).c_str());
  }
  return kExitAnswerNo;
}

int Summarizable(const DimensionSchema& ds,
                 const std::vector<std::string>& args,
                 const CliBudget& budget) {
  const HierarchySchema& schema = ds.hierarchy();
  Result<CategoryId> target = schema.CategoryIdOf(args[0]);
  if (!target.ok()) return Fail(target.status());
  std::vector<CategoryId> sources;
  for (size_t i = 1; i < args.size(); ++i) {
    Result<CategoryId> c = schema.CategoryIdOf(args[i]);
    if (!c.ok()) return Fail(c.status());
    sources.push_back(*c);
  }
  DimsatOptions options;
  budget.Apply(&options);
  Result<SummarizabilityResult> r =
      IsSummarizable(ds, *target, sources, options);
  if (!r.ok()) return Fail(r.status());
  if (!r->status.ok()) {
    std::printf("UNKNOWN (%zu of %zu bottom categories decided)\n",
                r->details.size(),
                schema.bottom_categories().size());
    PrintPartialStats(r->stats);
    return Fail(r->status);
  }
  std::printf("%s\n", r->summarizable ? "SUMMARIZABLE" : "NOT SUMMARIZABLE");
  for (const auto& detail : r->details) {
    if (!detail.implied && detail.counterexample.has_value()) {
      std::printf("counterexample (bottom %s): %s\n",
                  schema.CategoryName(detail.bottom).c_str(),
                  detail.counterexample->ToString(schema).c_str());
    }
  }
  return r->summarizable ? 0 : kExitAnswerNo;
}

int Minimize(const DimensionSchema& ds, const CliBudget& budget) {
  DimsatOptions options;
  budget.Apply(&options);
  Result<DimensionSchema> minimized = MinimizeConstraintSet(ds, options);
  if (!minimized.ok()) return Fail(minimized.status());
  std::printf("%s", SerializeSchema(*minimized).c_str());
  std::fprintf(stderr, "kept %zu of %zu constraints\n",
               minimized->constraints().size(), ds.constraints().size());
  return 0;
}

int Validate(const DimensionSchema& ds, const std::string& instance_path) {
  Result<DimensionInstance> d =
      LoadInstanceFile(ds.hierarchy_ptr(), instance_path);
  if (!d.ok()) return Fail(d.status());
  std::printf("structure (C1-C7): OK (%d members)\n", d->num_members());
  bool ok = true;
  for (const DimensionConstraint& c : ds.constraints()) {
    bool holds = Satisfies(*d, c);
    ok &= holds;
    std::printf("%-8s %s\n", holds ? "holds" : "VIOLATED",
                ConstraintToString(ds.hierarchy(), c).c_str());
    if (!holds) {
      for (MemberId m : ViolatingMembers(*d, c)) {
        std::printf("         by member '%s'\n", d->member(m).key.c_str());
      }
    }
  }
  return ok ? 0 : kExitAnswerNo;
}

/// Parsed global flags; `args` is everything else, in order.
struct CliFlags {
  std::vector<std::string> args;
  CliBudget budget;
  std::string metrics_json_path;
  std::string trace_path;
  /// Telemetry server: -1 = off, 0 = ephemeral port, else the port.
  int serve_port = -1;
  long serve_linger_ms = 0;
  bool explain = false;
  std::string explain_trace_path;
  bool usage_error = false;
};

/// Category names of the schema the current command loaded, so the
/// explain renderers can name prune edges (ids render as "#<id>"
/// before a schema is loaded).
std::vector<std::string> g_category_names;

std::string CategoryNameOf(int id) {
  if (id >= 0 && static_cast<size_t>(id) < g_category_names.size()) {
    return g_category_names[id];
  }
  return "#" + std::to_string(id);
}

/// Extracts `--flag value` / `--flag=value`. Returns true when `arg`
/// consumed the flag (then `*value` holds its value or is empty with
/// `flags->usage_error` set).
bool TakeFlagValue(const std::string& flag, const std::string& arg, int argc,
                   char** argv, int* i, std::string* value, CliFlags* flags) {
  if (arg == flag) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
      flags->usage_error = true;
      return true;
    }
    *value = argv[++*i];
    return true;
  }
  if (arg.rfind(flag + "=", 0) == 0) {
    *value = arg.substr(flag.size() + 1);
    if (value->empty()) {
      std::fprintf(stderr, "error: %s needs a value\n", flag.c_str());
      flags->usage_error = true;
    }
    return true;
  }
  return false;
}

CliFlags ParseFlags(int argc, char** argv) {
  CliFlags flags;
  if (int env = exec::EnvThreadCount(); env > 0) {
    flags.budget.threads = env;
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (TakeFlagValue("--deadline-ms", arg, argc, argv, &i, &value, &flags)) {
      if (flags.usage_error) return flags;
      char* end = nullptr;
      errno = 0;
      long ms = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || errno == ERANGE || ms <= 0) {
        std::fprintf(stderr,
                     "error: --deadline-ms needs a positive integer, got "
                     "'%s'\n",
                     value.c_str());
        flags.usage_error = true;
        return flags;
      }
      flags.budget.budget.SetDeadline(Budget::Clock::now() +
                                      std::chrono::milliseconds(ms));
      flags.budget.bounded = true;
      continue;
    }
    if (TakeFlagValue("--memory-budget-mb", arg, argc, argv, &i, &value,
                      &flags)) {
      if (flags.usage_error) return flags;
      char* end = nullptr;
      errno = 0;
      long mb = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || errno == ERANGE || mb <= 0 ||
          mb > (1 << 20)) {
        std::fprintf(stderr,
                     "error: --memory-budget-mb needs a positive integer "
                     "<= %d, got '%s'\n",
                     1 << 20, value.c_str());
        flags.usage_error = true;
        return flags;
      }
      flags.budget.memory = std::make_shared<MemoryBudget>(
          static_cast<uint64_t>(mb) * 1024 * 1024);
      flags.budget.budget.SetMemory(flags.budget.memory.get());
      flags.budget.bounded = true;
      continue;
    }
    if (TakeFlagValue("--threads", arg, argc, argv, &i, &value, &flags)) {
      if (flags.usage_error) return flags;
      char* end = nullptr;
      errno = 0;
      long n = std::strtol(value.c_str(), &end, 10);
      // ERANGE/bound check first: an overflowed parse must be a usage
      // error, not an int truncation into an arbitrary thread count.
      if (end == nullptr || *end != '\0' || errno == ERANGE || n <= 0 ||
          n > exec::kMaxThreads) {
        std::fprintf(stderr,
                     "error: --threads needs a positive integer <= %d, "
                     "got '%s'\n",
                     exec::kMaxThreads, value.c_str());
        flags.usage_error = true;
        return flags;
      }
      flags.budget.threads = static_cast<int>(n);
      continue;
    }
    if (TakeFlagValue("--metrics-json", arg, argc, argv, &i, &value, &flags)) {
      if (flags.usage_error) return flags;
      flags.metrics_json_path = value;
      continue;
    }
    if (TakeFlagValue("--trace", arg, argc, argv, &i, &value, &flags)) {
      if (flags.usage_error) return flags;
      flags.trace_path = value;
      continue;
    }
    if (TakeFlagValue("--serve-port", arg, argc, argv, &i, &value, &flags)) {
      if (flags.usage_error) return flags;
      char* end = nullptr;
      errno = 0;
      long port = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || errno == ERANGE || port < 0 ||
          port > 65535) {
        std::fprintf(stderr,
                     "error: --serve-port needs an integer in [0, 65535], "
                     "got '%s'\n",
                     value.c_str());
        flags.usage_error = true;
        return flags;
      }
      flags.serve_port = static_cast<int>(port);
      continue;
    }
    if (TakeFlagValue("--serve-linger-ms", arg, argc, argv, &i, &value,
                      &flags)) {
      if (flags.usage_error) return flags;
      char* end = nullptr;
      errno = 0;
      long ms = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || errno == ERANGE || ms < 0) {
        std::fprintf(stderr,
                     "error: --serve-linger-ms needs a non-negative "
                     "integer, got '%s'\n",
                     value.c_str());
        flags.usage_error = true;
        return flags;
      }
      flags.serve_linger_ms = ms;
      continue;
    }
    if (TakeFlagValue("--admission-high-water", arg, argc, argv, &i, &value,
                      &flags)) {
      if (flags.usage_error) return flags;
      char* end = nullptr;
      errno = 0;
      long n = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || errno == ERANGE || n <= 0) {
        std::fprintf(stderr,
                     "error: --admission-high-water needs a positive "
                     "integer, got '%s'\n",
                     value.c_str());
        flags.usage_error = true;
        return flags;
      }
      exec::AdmissionGate::Options gate_options;
      gate_options.high_water = n;
      flags.budget.admission =
          std::make_shared<exec::AdmissionGate>(gate_options);
      continue;
    }
    if (arg == "--explain") {
      flags.explain = true;
      continue;
    }
    if (TakeFlagValue("--explain-trace", arg, argc, argv, &i, &value,
                      &flags)) {
      if (flags.usage_error) return flags;
      flags.explain = true;
      flags.explain_trace_path = value;
      continue;
    }
    flags.args.push_back(std::move(arg));
  }
  return flags;
}

int RunCommand(const std::vector<std::string>& args, const CliBudget& budget) {
  const std::string& command = args[0];
  Result<DimensionSchema> ds = LoadSchemaFile(args[1]);
  if (!ds.ok()) return Fail(ds.status());

  // Let the explain renderers name categories after this command ends.
  g_category_names.clear();
  for (CategoryId c = 0; c < ds->hierarchy().num_categories(); ++c) {
    g_category_names.push_back(ds->hierarchy().CategoryName(c));
  }

  if (command == "check") return Check(*ds, budget);
  if (command == "dot") {
    std::printf("%s", ds->hierarchy().ToDot().c_str());
    return 0;
  }
  if (command == "minimize") return Minimize(*ds, budget);
  if (command == "report") {
    ReportOptions report_options;
    budget.Apply(&report_options.dimsat);
    Result<std::string> report = HeterogeneityReport(*ds, report_options);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s", report->c_str());
    return 0;
  }
  if (command == "frozen" && args.size() >= 3) {
    return Frozen(*ds, args[2], budget);
  }
  if (command == "implies" && args.size() >= 3) {
    std::string text;
    for (size_t i = 2; i < args.size(); ++i) {
      if (i > 2) text += " ";
      text += args[i];
    }
    return ImpliesCmd(*ds, text, budget);
  }
  if (command == "summarizable" && args.size() >= 4) {
    std::vector<std::string> rest(args.begin() + 2, args.end());
    return Summarizable(*ds, rest, budget);
  }
  if (command == "validate" && args.size() >= 3) return Validate(*ds, args[2]);
  if (command == "mine" && args.size() >= 3) {
    Result<DimensionInstance> d =
        LoadInstanceFile(ds->hierarchy_ptr(), args[2]);
    if (!d.ok()) return Fail(d.status());
    MiningOptions mining_options;
    mining_options.budget = budget.get();
    Result<DimensionSchema> mined = MineSchema(*d, mining_options);
    if (!mined.ok()) return Fail(mined.status());
    std::printf("%s", SerializeSchema(*mined).c_str());
    return 0;
  }
  return Usage();
}

/// Writes the final metrics snapshot; failure to write is reported but
/// does not change the command's exit code.
void DumpMetrics(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (out) out << obs::MetricsRegistry::Global().ToJson() << "\n";
  if (!out) {
    std::fprintf(stderr, "warning: could not write metrics to '%s'\n",
                 path.c_str());
  }
}

int Run(int argc, char** argv) {
  CliFlags flags = ParseFlags(argc, argv);
  if (flags.usage_error) return kExitUsage;
  if (flags.args.size() < 2) return Usage();

  // Size the shared pool to the requested parallelism before anything
  // instantiates it.
  if (flags.budget.threads > 1) {
    exec::SetProcessPoolThreads(flags.budget.threads);
  }

  if (!flags.metrics_json_path.empty()) {
    obs::MetricsRegistry::Global().Enable();
  }
  if (!flags.trace_path.empty() &&
      !obs::TraceSink::Global().Open(flags.trace_path)) {
    std::fprintf(stderr, "error: cannot open trace file '%s'\n",
                 flags.trace_path.c_str());
    return kExitUsage;
  }
  if (flags.explain) {
    obs::SearchTreeRecorder::Global().Enable();
  }

  obs::TelemetryServer server;
  if (flags.serve_port >= 0) {
    // A live scrape needs live content: the registry and a span ring
    // come up with the server even without --metrics-json/--trace.
    obs::MetricsRegistry::Global().Enable();
    obs::TraceSink::Global().EnableRing(256);
    obs::TelemetryServer::Options server_options;
    server_options.port = flags.serve_port;
    server_options.health = [memory = flags.budget.memory,
                             gate = flags.budget.admission]() {
      obs::HealthReport report;
      if (gate != nullptr) {
        const bool saturated =
            gate->in_flight() >= gate->options().high_water;
        if (saturated) report.ok = false;
        report.detail += "admission: in_flight=" +
                         std::to_string(gate->in_flight()) + " high_water=" +
                         std::to_string(gate->options().high_water) +
                         " shed=" + std::to_string(gate->shed()) + "\n";
      }
      if (memory != nullptr) {
        if (memory->exhausted()) report.ok = false;
        report.detail += "memory: reserved=" +
                         std::to_string(memory->reserved()) + " limit=" +
                         std::to_string(memory->limit()) +
                         (memory->exhausted() ? " exhausted" : "") + "\n";
      }
      return report;
    };
    if (!server.Start(server_options)) {
      return Fail(Status::Internal("telemetry server: " +
                                   server.last_error()));
    }
    std::fprintf(stderr, "telemetry: serving on 127.0.0.1:%d\n",
                 server.port());
  }

  const int code = RunCommand(flags.args, flags.budget);

  if (flags.explain) {
    std::vector<obs::ExplainEvent> events =
        obs::SearchTreeRecorder::Global().Drain();
    const std::string report = obs::RenderExplainReport(
        events, [](int id) { return CategoryNameOf(id); });
    std::fprintf(stderr, "--- explain: %zu search-tree decisions",
                 events.size());
    const uint64_t dropped = obs::SearchTreeRecorder::Global().dropped();
    if (dropped > 0) {
      std::fprintf(stderr, " (%llu dropped to ring bounds)",
                   static_cast<unsigned long long>(dropped));
    }
    std::fprintf(stderr, " ---\n%s", report.c_str());
    if (!flags.explain_trace_path.empty()) {
      std::ofstream out(flags.explain_trace_path, std::ios::trunc);
      if (out) {
        out << obs::RenderChromeTrace(
                   events, [](int id) { return CategoryNameOf(id); })
            << "\n";
      }
      if (!out) {
        std::fprintf(stderr,
                     "warning: could not write explain trace to '%s'\n",
                     flags.explain_trace_path.c_str());
      }
    }
    obs::SearchTreeRecorder::Global().Disable();
  }

  if (server.running() && flags.serve_linger_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.serve_linger_ms));
  }
  server.Stop();

  if (!flags.metrics_json_path.empty()) {
    // Final gauge refresh so the export carries the quiescent memory
    // picture (reserved_bytes_now back to 0, peak_bytes at high water).
    if (flags.budget.memory) flags.budget.memory->PublishGauges();
    DumpMetrics(flags.metrics_json_path);
  }
  obs::TraceSink::Global().Close();
  return code;
}

}  // namespace
}  // namespace olapdc

int main(int argc, char** argv) { return olapdc::Run(argc, argv); }
