// olapdc — command-line front end for the dimension-constraint
// reasoner.
//
//   olapdc check <schema-file>
//       Parse the schema and audit every category's satisfiability;
//       for unsatisfiable categories, print a minimal conflicting
//       constraint core.
//   olapdc frozen <schema-file> <root-category>
//       Enumerate the frozen dimensions with the given root.
//   olapdc implies <schema-file> <constraint...>
//       Decide ds |= alpha; print a counterexample structure if not.
//   olapdc summarizable <schema-file> <target> <source>...
//       Theorem 1 test: is <target> summarizable from the sources?
//   olapdc minimize <schema-file>
//       Print the schema with redundant constraints removed.
//   olapdc dot <schema-file>
//       Emit the hierarchy as Graphviz.
//   olapdc validate <schema-file> <instance-file>
//       Load an instance, run C1-C7 validation and the Sigma model
//       check.
//   olapdc mine <schema-file> <instance-file>
//       Learn dimension constraints from the instance and print the
//       resulting schema.

#include <cstdio>
#include <string>
#include <vector>

#include "constraint/evaluator.h"
#include "constraint/parser.h"
#include "constraint/printer.h"
#include "core/diagnostics.h"
#include "core/dimsat.h"
#include "core/implication.h"
#include "core/mining.h"
#include "core/report.h"
#include "core/summarizability.h"
#include "io/instance_io.h"
#include "io/schema_io.h"

namespace olapdc {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: olapdc <command> <schema-file> [args...]\n"
      "  check <schema>                     satisfiability audit\n"
      "  frozen <schema> <root>             enumerate frozen dimensions\n"
      "  implies <schema> <constraint...>   decide ds |= alpha\n"
      "  summarizable <schema> <target> <source>...\n"
      "  minimize <schema>                  drop redundant constraints\n"
      "  report <schema>                    heterogeneity report\n"
      "  dot <schema>                       Graphviz of the hierarchy\n"
      "  validate <schema> <instance>       C1-C7 + Sigma model check\n"
      "  mine <schema> <instance>           learn constraints from data\n");
  return 2;
}

int Check(const DimensionSchema& ds) {
  const HierarchySchema& schema = ds.hierarchy();
  bool all_ok = true;
  for (CategoryId c = 0; c < schema.num_categories(); ++c) {
    Result<bool> satisfiable = IsCategorySatisfiable(ds, c);
    if (!satisfiable.ok()) return Fail(satisfiable.status());
    std::printf("%-20s %s\n", schema.CategoryName(c).c_str(),
                *satisfiable ? "satisfiable" : "UNSATISFIABLE");
    if (!*satisfiable) {
      all_ok = false;
      Result<std::vector<size_t>> core = UnsatisfiableCore(ds, c);
      if (core.ok()) {
        std::printf("  conflicting constraints:\n");
        for (size_t i : *core) {
          std::printf("    %s\n",
                      ConstraintToString(schema, ds.constraints()[i]).c_str());
        }
      }
    }
  }
  return all_ok ? 0 : 1;
}

int Frozen(const DimensionSchema& ds, const std::string& root_name) {
  Result<CategoryId> root = ds.hierarchy().CategoryIdOf(root_name);
  if (!root.ok()) return Fail(root.status());
  DimsatResult r = EnumerateFrozenDimensions(ds, *root);
  if (!r.status.ok()) return Fail(r.status);
  std::printf("%zu frozen dimension(s) with root %s:\n", r.frozen.size(),
              root_name.c_str());
  for (const FrozenDimension& f : r.frozen) {
    std::printf("  %s\n", f.ToString(ds.hierarchy()).c_str());
  }
  return 0;
}

int ImpliesCmd(const DimensionSchema& ds, const std::string& text) {
  Result<DimensionConstraint> alpha =
      ParseConstraint(ds.hierarchy(), text);
  if (!alpha.ok()) return Fail(alpha.status());
  Result<ImplicationResult> r = Implies(ds, *alpha);
  if (!r.ok()) return Fail(r.status());
  if (r->implied) {
    std::printf("IMPLIED\n");
    return 0;
  }
  std::printf("NOT IMPLIED\n");
  if (r->counterexample.has_value()) {
    std::printf("counterexample: %s\n",
                r->counterexample->ToString(ds.hierarchy()).c_str());
  }
  return 1;
}

int Summarizable(const DimensionSchema& ds,
                 const std::vector<std::string>& args) {
  const HierarchySchema& schema = ds.hierarchy();
  Result<CategoryId> target = schema.CategoryIdOf(args[0]);
  if (!target.ok()) return Fail(target.status());
  std::vector<CategoryId> sources;
  for (size_t i = 1; i < args.size(); ++i) {
    Result<CategoryId> c = schema.CategoryIdOf(args[i]);
    if (!c.ok()) return Fail(c.status());
    sources.push_back(*c);
  }
  Result<SummarizabilityResult> r = IsSummarizable(ds, *target, sources);
  if (!r.ok()) return Fail(r.status());
  std::printf("%s\n", r->summarizable ? "SUMMARIZABLE" : "NOT SUMMARIZABLE");
  for (const auto& detail : r->details) {
    if (!detail.implied && detail.counterexample.has_value()) {
      std::printf("counterexample (bottom %s): %s\n",
                  schema.CategoryName(detail.bottom).c_str(),
                  detail.counterexample->ToString(schema).c_str());
    }
  }
  return r->summarizable ? 0 : 1;
}

int Minimize(const DimensionSchema& ds) {
  Result<DimensionSchema> minimized = MinimizeConstraintSet(ds);
  if (!minimized.ok()) return Fail(minimized.status());
  std::printf("%s", SerializeSchema(*minimized).c_str());
  std::fprintf(stderr, "kept %zu of %zu constraints\n",
               minimized->constraints().size(), ds.constraints().size());
  return 0;
}

int Validate(const DimensionSchema& ds, const std::string& instance_path) {
  Result<DimensionInstance> d =
      LoadInstanceFile(ds.hierarchy_ptr(), instance_path);
  if (!d.ok()) return Fail(d.status());
  std::printf("structure (C1-C7): OK (%d members)\n", d->num_members());
  bool ok = true;
  for (const DimensionConstraint& c : ds.constraints()) {
    bool holds = Satisfies(*d, c);
    ok &= holds;
    std::printf("%-8s %s\n", holds ? "holds" : "VIOLATED",
                ConstraintToString(ds.hierarchy(), c).c_str());
    if (!holds) {
      for (MemberId m : ViolatingMembers(*d, c)) {
        std::printf("         by member '%s'\n", d->member(m).key.c_str());
      }
    }
  }
  return ok ? 0 : 1;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  Result<DimensionSchema> ds = LoadSchemaFile(argv[2]);
  if (!ds.ok()) return Fail(ds.status());

  if (command == "check") return Check(*ds);
  if (command == "dot") {
    std::printf("%s", ds->hierarchy().ToDot().c_str());
    return 0;
  }
  if (command == "minimize") return Minimize(*ds);
  if (command == "report") {
    Result<std::string> report = HeterogeneityReport(*ds);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s", report->c_str());
    return 0;
  }
  if (command == "frozen" && argc >= 4) return Frozen(*ds, argv[3]);
  if (command == "implies" && argc >= 4) {
    std::string text;
    for (int i = 3; i < argc; ++i) {
      if (i > 3) text += " ";
      text += argv[i];
    }
    return ImpliesCmd(*ds, text);
  }
  if (command == "summarizable" && argc >= 5) {
    std::vector<std::string> args(argv + 3, argv + argc);
    return Summarizable(*ds, args);
  }
  if (command == "validate" && argc >= 4) return Validate(*ds, argv[3]);
  if (command == "mine" && argc >= 4) {
    Result<DimensionInstance> d =
        LoadInstanceFile(ds->hierarchy_ptr(), argv[3]);
    if (!d.ok()) return Fail(d.status());
    Result<DimensionSchema> mined = MineSchema(*d);
    if (!mined.ok()) return Fail(mined.status());
    std::printf("%s", SerializeSchema(*mined).c_str());
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace olapdc

int main(int argc, char** argv) { return olapdc::Run(argc, argv); }
