// olapdcd — the resident dimension-constraint reasoning daemon
// (ROADMAP item 1; docs/robustness.md "Daemon lifecycle").
//
// Serves the DimService request plane (POST /v1/check, /v1/implies,
// /v1/summarizable, /v1/batch, /v1/schemas) and the telemetry GET
// routes (/metrics, /varz, /healthz, /tracez) on one loopback port,
// over the hardened HttpServer transport: concurrent connections,
// per-request read/write deadlines, header/body caps, overload
// shedding with adaptive Retry-After.
//
// Lifecycle: on SIGTERM/SIGINT the daemon stops accepting, sheds new
// requests, and gives in-flight work the first half of
// --drain-timeout-ms to finish on its own; anything still running is
// then cancelled through the shared drain token, which makes
// sequential DIMSAT runs checkpoint and return their frontier to the
// client. Exit 0 = drained within the deadline, 1 = drain deadline
// exceeded, 2 = usage, else the olapdc CLI exit-code taxonomy for
// startup failures (e.g. 14 = schema file not found).
//
// Fault injection (--fault-site/--fault-prob/--fault-seed) arms the
// process-wide injector *inside the serving threads* — the live-daemon
// chaos soak (tools/loadgen, chaos_campaign --daemon) depends on it.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "exec/admission.h"
#include "io/durable_file.h"
#include "io/schema_io.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "service/dim_service.h"
#include "service/schema_registry.h"
#include "service/service_caches.h"
#include "service/snapshot.h"

namespace olapdc {
namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: olapdcd [flags]\n"
      "  --port N                 TCP port on 127.0.0.1 (default 0 = "
      "ephemeral; bound port printed on stdout)\n"
      "  --schema name=path       pre-register a schema file (repeatable)\n"
      "  --drain-timeout-ms N     graceful-drain deadline on SIGTERM "
      "(default 5000)\n"
      "  --max-connections N      concurrent connections (default 4)\n"
      "  --max-body-bytes N       request body cap (default 1048576)\n"
      "  --max-header-bytes N     request header cap (default 16384)\n"
      "  --read-timeout-ms N      per-request receive deadline (default "
      "5000)\n"
      "  --admission-high-water N concurrent admitted requests (default "
      "16)\n"
      "  --request-deadline-ms N  default per-request deadline (default "
      "2000)\n"
      "  --max-deadline-ms N      ceiling on client deadlines (default "
      "30000)\n"
      "  --memory-budget-mb N     per-request memory envelope (default 64)\n"
      "  --threads N              ceiling on per-request parallelism "
      "(default 1)\n"
      "  --max-batch N            ceiling on /v1/batch size (default 64)\n"
      "  --no-register            disable POST /v1/schemas\n"
      "  --cache-budget-mb N      cross-request cache envelope (default "
      "32; 0 disables caching)\n"
      "  --nogood-file PATH       load learned DIMSAT pruning on start, "
      "save it on drain\n"
      "  --snapshot-file PATH     durable cache snapshot: recovered on "
      "start, rewritten on drain\n"
      "  --snapshot-interval-ms N also rewrite the snapshot every N ms off "
      "the serving path (default 0 = drain only)\n"
      "  --fault-site S           arm fault site S (repeatable; 'all' = "
      "every registered site)\n"
      "  --fault-prob P           injection probability (default 0.01)\n"
      "  --fault-seed N           injector seed (default 42)\n"
      "  --linger-ms N            exit (with a clean drain) after N ms — "
      "smoke tests\n");
  return 2;
}

int ExitCodeFor(const Status& status) {
  return status.ok() ? 0 : static_cast<int>(status.code());
}

/// Validated integer flag parse (the olapdc_cli.cc pattern): rejects
/// empty/non-numeric text, trailing junk, and out-of-range values
/// instead of atoll's silent 0 and ERANGE saturation.
bool ParseInt64Flag(const char* flag, const std::string& text, int64_t min,
                    int64_t max, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long n = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      n < min || n > max) {
    std::fprintf(stderr,
                 "error: %s needs an integer in [%lld, %lld], got '%s'\n",
                 flag, static_cast<long long>(min),
                 static_cast<long long>(max), text.c_str());
    return false;
  }
  *out = n;
  return true;
}

bool ParseDoubleFlag(const char* flag, const std::string& text, double min,
                     double max, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      !(v >= min && v <= max)) {
    std::fprintf(stderr, "error: %s needs a number in [%g, %g], got '%s'\n",
                 flag, min, max, text.c_str());
    return false;
  }
  *out = v;
  return true;
}

StatusCode NaturalFaultCode(const std::string& site) {
  if (site == "schema_io.parse" || site == "instance_io.parse") {
    return StatusCode::kParseError;
  }
  if (site == "mem.reserve") return StatusCode::kResourceExhausted;
  return StatusCode::kInternal;
}

int Main(int argc, char** argv) {
  int64_t port = 0;
  std::vector<std::pair<std::string, std::string>> schema_files;
  int64_t drain_timeout_ms = 5000;
  int64_t max_connections = 4;
  int64_t max_body_bytes = 1 << 20;
  int64_t max_header_bytes = 16 * 1024;
  int64_t read_timeout_ms = 5000;
  int64_t admission_high_water = 16;
  int64_t request_deadline_ms = 2000;
  int64_t max_deadline_ms = 30000;
  int64_t memory_budget_mb = 64;
  int64_t threads = 1;
  int64_t max_batch = 64;
  bool allow_register = true;
  int64_t cache_budget_mb = 32;
  std::string nogood_file;
  std::string snapshot_file;
  int64_t snapshot_interval_ms = 0;
  std::vector<std::string> fault_sites;
  double fault_prob = 0.01;
  int64_t fault_seed = 42;
  int64_t linger_ms = -1;

  constexpr int64_t kMs = 1ll << 40;  // generous ceiling for *-ms flags
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    const size_t eq = arg.find('=');
    bool has_value = false;
    if (eq != std::string::npos && arg.rfind("--", 0) == 0) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
      has_value = true;
    }
    auto next = [&]() -> std::string {
      if (has_value) return value;
      if (i + 1 < argc) return argv[++i];
      return "";
    };
    if (arg == "--port") {
      if (!ParseInt64Flag("--port", next(), 0, 65535, &port)) return Usage();
    } else if (arg == "--schema") {
      const std::string spec = next();
      const size_t sep = spec.find('=');
      if (sep == std::string::npos || sep == 0 || sep + 1 >= spec.size()) {
        std::fprintf(stderr, "error: --schema expects name=path\n");
        return 2;
      }
      schema_files.emplace_back(spec.substr(0, sep), spec.substr(sep + 1));
    } else if (arg == "--drain-timeout-ms") {
      if (!ParseInt64Flag("--drain-timeout-ms", next(), 1, kMs,
                          &drain_timeout_ms)) {
        return Usage();
      }
    } else if (arg == "--max-connections") {
      if (!ParseInt64Flag("--max-connections", next(), 1, 4096,
                          &max_connections)) {
        return Usage();
      }
    } else if (arg == "--max-body-bytes") {
      if (!ParseInt64Flag("--max-body-bytes", next(), 1, 1ll << 40,
                          &max_body_bytes)) {
        return Usage();
      }
    } else if (arg == "--max-header-bytes") {
      if (!ParseInt64Flag("--max-header-bytes", next(), 1, 1ll << 30,
                          &max_header_bytes)) {
        return Usage();
      }
    } else if (arg == "--read-timeout-ms") {
      if (!ParseInt64Flag("--read-timeout-ms", next(), 1, kMs,
                          &read_timeout_ms)) {
        return Usage();
      }
    } else if (arg == "--admission-high-water") {
      if (!ParseInt64Flag("--admission-high-water", next(), 1, 1 << 20,
                          &admission_high_water)) {
        return Usage();
      }
    } else if (arg == "--request-deadline-ms") {
      if (!ParseInt64Flag("--request-deadline-ms", next(), 1, kMs,
                          &request_deadline_ms)) {
        return Usage();
      }
    } else if (arg == "--max-deadline-ms") {
      if (!ParseInt64Flag("--max-deadline-ms", next(), 1, kMs,
                          &max_deadline_ms)) {
        return Usage();
      }
    } else if (arg == "--memory-budget-mb") {
      if (!ParseInt64Flag("--memory-budget-mb", next(), 1, 1 << 20,
                          &memory_budget_mb)) {
        return Usage();
      }
    } else if (arg == "--threads") {
      if (!ParseInt64Flag("--threads", next(), 1, 256, &threads)) {
        return Usage();
      }
    } else if (arg == "--max-batch") {
      if (!ParseInt64Flag("--max-batch", next(), 1, 1 << 20, &max_batch)) {
        return Usage();
      }
    } else if (arg == "--no-register") {
      allow_register = false;
    } else if (arg == "--cache-budget-mb") {
      if (!ParseInt64Flag("--cache-budget-mb", next(), 0, 1 << 20,
                          &cache_budget_mb)) {
        return Usage();
      }
    } else if (arg == "--nogood-file") {
      nogood_file = next();
    } else if (arg == "--snapshot-file") {
      snapshot_file = next();
    } else if (arg == "--snapshot-interval-ms") {
      if (!ParseInt64Flag("--snapshot-interval-ms", next(), 0, kMs,
                          &snapshot_interval_ms)) {
        return Usage();
      }
    } else if (arg == "--fault-site") {
      fault_sites.push_back(next());
    } else if (arg == "--fault-prob") {
      if (!ParseDoubleFlag("--fault-prob", next(), 0.0, 1.0, &fault_prob)) {
        return Usage();
      }
    } else if (arg == "--fault-seed") {
      if (!ParseInt64Flag("--fault-seed", next(), 0,
                          std::numeric_limits<int64_t>::max(), &fault_seed)) {
        return Usage();
      }
    } else if (arg == "--linger-ms") {
      if (!ParseInt64Flag("--linger-ms", next(), -1, kMs, &linger_ms)) {
        return Usage();
      }
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (!snapshot_file.empty() && cache_budget_mb <= 0) {
    std::fprintf(stderr, "error: --snapshot-file needs --cache-budget-mb > 0\n");
    return 2;
  }
  if (snapshot_interval_ms > 0 && snapshot_file.empty()) {
    std::fprintf(stderr,
                 "error: --snapshot-interval-ms needs --snapshot-file\n");
    return 2;
  }

  obs::MetricsRegistry::Global().Enable();

  service::SchemaRegistry registry;
  for (const auto& [name, path] : schema_files) {
    Result<DimensionSchema> loaded = LoadSchemaFile(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: cannot load schema '%s' from %s: %s\n",
                   name.c_str(), path.c_str(),
                   loaded.status().ToString().c_str());
      return ExitCodeFor(loaded.status());
    }
    registry.RegisterParsed(name, std::move(*loaded));
  }

  if (!fault_sites.empty()) {
    std::vector<std::string> armed = fault_sites;
    if (armed.size() == 1 && armed[0] == "all") {
      armed = RegisteredFaultSites();
    }
    FaultInjector::Global().Arm(fault_seed);
    for (const std::string& site : armed) {
      FaultInjector::Global().SetFault(site, NaturalFaultCode(site),
                                       fault_prob, "olapdcd");
    }
    std::fprintf(stderr, "olapdcd: %zu fault sites armed at p=%g seed=%llu\n",
                 armed.size(), fault_prob,
                 static_cast<unsigned long long>(fault_seed));
  }

  exec::AdmissionGate gate(
      exec::AdmissionGate::Options{admission_high_water, 50});

  service::DimService::Options service_options;
  service_options.registry = &registry;
  service_options.gate = &gate;
  service_options.default_deadline_ms = request_deadline_ms;
  service_options.max_deadline_ms = max_deadline_ms;
  service_options.memory_budget_bytes =
      static_cast<uint64_t>(memory_budget_mb) << 20;
  service_options.max_threads = threads;
  service_options.max_batch = static_cast<size_t>(max_batch);
  service_options.allow_register = allow_register;

  // The cross-request cache plane (docs/caching.md). A warm restart
  // against byte-identical schemas reloads the learned DIMSAT pruning;
  // the epoch inside the file makes a stale load harmless (the store
  // just stays cold).
  std::unique_ptr<service::ServiceCaches> caches;
  if (cache_budget_mb > 0) {
    service::ServiceCaches::Options cache_options;
    cache_options.memory_budget_bytes =
        static_cast<uint64_t>(cache_budget_mb) << 20;
    caches = std::make_unique<service::ServiceCaches>(cache_options);
    service_options.caches = caches.get();
    if (!nogood_file.empty()) {
      std::ifstream in(nogood_file);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const Status loaded = caches->LoadNoGoods(buffer.str());
        if (loaded.ok()) {
          std::fprintf(stderr, "olapdcd: loaded no-good stores from %s\n",
                       nogood_file.c_str());
        } else {
          std::fprintf(stderr,
                       "olapdcd: ignoring no-good file %s: %s\n",
                       nogood_file.c_str(), loaded.ToString().c_str());
        }
      }
    }
  } else if (!nogood_file.empty()) {
    std::fprintf(stderr,
                 "error: --nogood-file needs --cache-budget-mb > 0\n");
    return 2;
  }

  // Crash recovery (docs/robustness.md "Crash durability & recovery"):
  // load the newest valid snapshot, salvaging a torn tail in place. A
  // missing, torn, or even completely corrupt snapshot must never stop
  // the daemon from starting — worst case it starts cold, exactly like
  // a first boot. Epoch discipline is carried inside the sections
  // (no-good stores and response keys name their content epochs), so a
  // snapshot from before a schema change re-loads harmlessly cold.
  uint64_t snapshot_seq = 1;
  if (caches != nullptr && !snapshot_file.empty()) {
    const auto recovery_start = std::chrono::steady_clock::now();
    Result<DurableReadResult> read =
        ReadDurableFile(snapshot_file, /*truncate_torn_tail=*/true);
    if (read.ok()) {
      Result<service::SnapshotRestore> restored =
          service::LoadSnapshotRecords(read->records, caches.get());
      const int64_t recovery_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - recovery_start)
              .count();
      if (restored.ok()) {
        snapshot_seq = restored->seq + 1;
        obs::Gauge("olapdc.durable.recovery_ms", recovery_ms);
        // The crash harness parses this line (before the listening
        // line, which loadgen tolerates); keep it stable.
        std::printf("olapdcd recovered snapshot seq=%llu nogoods=%llu "
                    "torn=%llu crc_drops=%llu\n",
                    static_cast<unsigned long long>(restored->seq),
                    static_cast<unsigned long long>(
                        caches->NoGoodEntryCount()),
                    static_cast<unsigned long long>(
                        read->torn_tail_truncations),
                    static_cast<unsigned long long>(read->crc_drops));
        std::fflush(stdout);
      } else {
        std::fprintf(stderr, "olapdcd: ignoring snapshot %s: %s\n",
                     snapshot_file.c_str(),
                     restored.status().ToString().c_str());
      }
    } else if (read.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "olapdcd: ignoring snapshot %s: %s\n",
                   snapshot_file.c_str(), read.status().ToString().c_str());
    }
  }

  service::DimService dim_service(service_options);

  // The telemetry GET routes share the port; /healthz is served here so
  // it can see the gate and the drain state.
  obs::TelemetryServer telemetry_routes;

  obs::HttpServer server;
  obs::HttpServer::Options server_options;
  server_options.port = port;
  server_options.max_connections = max_connections;
  server_options.max_header_bytes = static_cast<size_t>(max_header_bytes);
  server_options.max_body_bytes = static_cast<size_t>(max_body_bytes);
  server_options.read_timeout_ms = static_cast<int>(read_timeout_ms);
  server_options.handler = [&](const obs::HttpRequest& request)
      -> obs::HttpResponse {
    if (request.method == "GET" || request.method == "HEAD") {
      if (request.path == "/healthz") {
        const bool shedding =
            gate.in_flight() >= gate.options().high_water;
        const bool ok = !shedding && !dim_service.draining();
        std::string body = ok ? "ok\n" : "degraded\n";
        if (dim_service.draining()) body += "draining\n";
        if (shedding) body += "admission gate at high-water\n";
        return obs::HttpResponse{ok ? 200 : 503,
                                 "text/plain; charset=utf-8", body, {}};
      }
      obs::TelemetryServer::Response response =
          telemetry_routes.Handle(request.path);
      return obs::HttpResponse{response.status, response.content_type,
                               response.body, {}};
    }
    return dim_service.HandleRequest(request);
  };

  if (!server.Start(server_options)) {
    std::fprintf(stderr, "error: cannot start server: %s\n",
                 server.last_error().c_str());
    return static_cast<int>(StatusCode::kInternal);
  }

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Periodic snapshotting runs on its own thread, entirely off the
  // serving path: it serializes the cache plane (brief shard locks)
  // and does the durable write+fsync+rename with no request waiting on
  // it. A failed write (injected or real) leaves the previous snapshot
  // intact — that is the durable-file contract — so it is logged and
  // retried next tick.
  auto write_snapshot = [&]() -> Status {
    const std::vector<std::string> records =
        service::BuildSnapshotRecords(snapshot_seq, registry, *caches);
    DurableWriteStats stats;
    OLAPDC_RETURN_NOT_OK(WriteDurableFile(snapshot_file, records, &stats));
    ++snapshot_seq;
    obs::Count("olapdc.durable.snapshots");
    return Status::OK();
  };
  std::atomic<bool> stop_snapshots{false};
  std::thread snapshot_thread;
  if (caches != nullptr && !snapshot_file.empty() &&
      snapshot_interval_ms > 0) {
    snapshot_thread = std::thread([&] {
      auto next_at = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(snapshot_interval_ms);
      while (!stop_snapshots.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        if (std::chrono::steady_clock::now() < next_at) continue;
        next_at = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(snapshot_interval_ms);
        const Status status = write_snapshot();
        if (!status.ok()) {
          std::fprintf(stderr, "olapdcd: snapshot failed: %s\n",
                       status.ToString().c_str());
        }
      }
    });
  }

  // loadgen and the CI smoke parse this line; keep it stable.
  std::printf("olapdcd listening on port %d\n", server.port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "olapdcd: %zu schemas, gate high-water %lld, drain timeout "
               "%lld ms\n",
               registry.size(),
               static_cast<long long>(admission_high_water),
               static_cast<long long>(drain_timeout_ms));

  const auto started = std::chrono::steady_clock::now();
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (linger_ms >= 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::milliseconds(linger_ms)) {
      break;
    }
  }

  // Graceful drain: shed new work, give in-flight requests the first
  // half of the deadline to finish, then cancel (sequential DIMSAT
  // runs checkpoint back to their clients) and wait out the rest.
  const auto drain_start = std::chrono::steady_clock::now();
  server.BeginDrain();
  dim_service.BeginDrain();
  bool drained = server.WaitDrained(static_cast<int>(drain_timeout_ms / 2));
  if (!drained) {
    dim_service.CancelInFlight();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - drain_start)
            .count();
    const int64_t remaining = drain_timeout_ms - elapsed;
    drained = remaining > 0 && server.WaitDrained(static_cast<int>(remaining));
  }
  const int64_t drain_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - drain_start)
          .count();
  server.Stop();
  stop_snapshots.store(true, std::memory_order_relaxed);
  if (snapshot_thread.joinable()) snapshot_thread.join();

  // Disarm *before* the final persists: a clean shutdown's durable
  // state must not be lost to the daemon's own injected faults (the
  // chaos soaks arm every registered site, including durable.*).
  if (!fault_sites.empty()) FaultInjector::Global().Disarm();

  // Final persists. A failed persist on a clean drain is a real error:
  // the operator asked for durable state and is not getting it, so say
  // so and exit nonzero (tier-1 covers this path with an unwritable
  // target).
  bool persist_failed = false;
  if (caches != nullptr && !snapshot_file.empty()) {
    const uint64_t saved_seq = snapshot_seq;
    const Status status = write_snapshot();
    if (status.ok()) {
      // The crash harness parses this line; keep it stable.
      std::printf("olapdcd snapshot saved seq=%llu nogoods=%llu\n",
                  static_cast<unsigned long long>(saved_seq),
                  static_cast<unsigned long long>(
                      caches->NoGoodEntryCount()));
      std::fflush(stdout);
    } else {
      std::fprintf(stderr, "olapdcd: cannot write snapshot %s: %s\n",
                   snapshot_file.c_str(), status.ToString().c_str());
      persist_failed = true;
    }
  }
  if (caches != nullptr && !nogood_file.empty()) {
    std::ofstream out(nogood_file, std::ios::trunc);
    out << caches->SerializeNoGoods();
    out.close();
    // The stream state after close() covers open, write, and flush
    // failures alike; "saved" is only claimed when all three held.
    if (out.fail()) {
      std::fprintf(stderr, "olapdcd: cannot write no-good file %s\n",
                   nogood_file.c_str());
      persist_failed = true;
    } else {
      std::fprintf(stderr, "olapdcd: saved no-good stores to %s\n",
                   nogood_file.c_str());
    }
  }

  std::fprintf(stderr,
               "olapdcd: drain %s in %lld ms (requests=%llu ok=%llu "
               "errors=%llu shed=%llu checkpointed=%llu)\n",
               drained ? "complete" : "DEADLINE EXCEEDED",
               static_cast<long long>(drain_ms),
               static_cast<unsigned long long>(dim_service.requests()),
               static_cast<unsigned long long>(dim_service.ok()),
               static_cast<unsigned long long>(dim_service.errors()),
               static_cast<unsigned long long>(dim_service.shed()),
               static_cast<unsigned long long>(dim_service.checkpointed()));
  if (persist_failed) return static_cast<int>(StatusCode::kInternal);
  return drained ? 0 : 1;
}

}  // namespace
}  // namespace olapdc

int main(int argc, char** argv) { return olapdc::Main(argc, argv); }
